"""Memory system: routing, copy costs, data movement, cache interplay."""

import numpy as np
import pytest

from repro.errors import RoutingError, SimulationError
from repro.hardware.machines import dancer, ig, numa_machine, zoot
from repro.hardware.memory import MemorySystem, SimBuffer
from repro.simtime import Simulator
from repro.units import KiB, MiB


def timed_copy(sim, mem, **kw):
    out = {}

    def body():
        t0 = sim.now
        yield mem.copy(**kw)
        out["t"] = sim.now - t0

    sim.process(body())
    sim.run()
    return out["t"]


class TestSimBuffer:
    def test_backed_buffer_views_bytes(self):
        arr = np.arange(16, dtype=np.uint8)
        buf = SimBuffer(16, 0, array=arr)
        assert buf.backed
        assert bytes(buf.data) == bytes(range(16))

    def test_unbacked_buffer(self):
        buf = SimBuffer(1024, 0)
        assert not buf.backed

    def test_size_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            SimBuffer(10, 0, array=np.zeros(20, dtype=np.uint8))

    def test_noncontiguous_rejected(self):
        arr = np.zeros((8, 8), dtype=np.uint8)[:, ::2]
        with pytest.raises(SimulationError):
            SimBuffer(arr.nbytes, 0, array=arr)

    def test_range_check(self):
        buf = SimBuffer(100, 0)
        buf.check_range(0, 100)
        with pytest.raises(SimulationError):
            buf.check_range(50, 51)
        with pytest.raises(SimulationError):
            buf.check_range(-1, 10)


class TestRouting:
    def test_same_domain_empty_route(self):
        sim = Simulator()
        mem = MemorySystem(sim, dancer())
        assert mem.route(0, 0) == []

    def test_adjacent_route(self):
        sim = Simulator()
        mem = MemorySystem(sim, dancer())
        assert mem.route(0, 1) == [(0, 1)]

    def test_ig_cross_board_uses_bridge(self):
        sim = Simulator()
        mem = MemorySystem(sim, ig())
        path = mem.route(1, 5)
        bridges = {(0, 4), (3, 7)}
        assert any(k in bridges for k in path)

    def test_disconnected_rejected(self):
        spec = numa_machine(n_domains=3, topology="chain")
        import dataclasses
        broken = dataclasses.replace(spec, links=(spec.links[0],))
        sim = Simulator()
        with pytest.raises(RoutingError):
            MemorySystem(sim, broken)


class TestCopy:
    def test_moves_real_bytes(self):
        sim = Simulator()
        mem = MemorySystem(sim, dancer())
        a = mem.alloc(1024, 0)
        b = mem.alloc(1024, 1)
        a.data[:] = 7

        def body():
            yield mem.copy(0, a, 0, b, 0, 1024)

        sim.process(body())
        sim.run()
        assert (b.data == 7).all()

    def test_partial_offset_copy(self):
        sim = Simulator()
        mem = MemorySystem(sim, dancer())
        a = mem.alloc(100, 0)
        b = mem.alloc(100, 0)
        a.data[:] = np.arange(100, dtype=np.uint8)

        def body():
            yield mem.copy(0, a, 10, b, 50, 20)

        sim.process(body())
        sim.run()
        assert (b.data[50:70] == np.arange(10, 30, dtype=np.uint8)).all()
        assert (b.data[:50] == 0).all()

    def test_large_copy_slower_than_small(self):
        sim = Simulator()
        mem = MemorySystem(sim, dancer())
        a = mem.alloc(4 * MiB, 0, backed=False)
        b = mem.alloc(4 * MiB, 0, backed=False)
        t_small = timed_copy(sim, mem, core=0, src=a, src_off=0, dst=b,
                             dst_off=0, nbytes=64 * KiB)
        t_big = timed_copy(sim, mem, core=0, src=a, src_off=0, dst=b,
                           dst_off=0, nbytes=4 * MiB)
        assert t_big > t_small * 10

    def test_cross_domain_slower_than_local(self):
        sim = Simulator()
        spec = ig()
        mem = MemorySystem(sim, spec)
        src_local = mem.alloc(1 * MiB, 0, backed=False)
        src_remote = mem.alloc(1 * MiB, 7, backed=False)
        dst = mem.alloc(1 * MiB, 0, backed=False)
        t_local = timed_copy(sim, mem, core=0, src=src_local, src_off=0,
                             dst=dst, dst_off=0, nbytes=1 * MiB)
        t_remote = timed_copy(sim, mem, core=0, src=src_remote, src_off=0,
                              dst=dst, dst_off=0, nbytes=1 * MiB)
        assert t_remote > t_local

    def test_cached_recopy_faster(self):
        sim = Simulator()
        mem = MemorySystem(sim, dancer())
        a = mem.alloc(256 * KiB, 0, backed=False)
        b = mem.alloc(256 * KiB, 0, backed=False)
        t_cold = timed_copy(sim, mem, core=0, src=a, src_off=0, dst=b,
                            dst_off=0, nbytes=256 * KiB)
        t_warm = timed_copy(sim, mem, core=0, src=a, src_off=0, dst=b,
                            dst_off=0, nbytes=256 * KiB)
        assert t_warm < t_cold

    def test_off_cache_invalidation_restores_cold_time(self):
        sim = Simulator()
        mem = MemorySystem(sim, dancer())
        a = mem.alloc(256 * KiB, 0, backed=False)
        b = mem.alloc(256 * KiB, 0, backed=False)
        t_cold = timed_copy(sim, mem, core=0, src=a, src_off=0, dst=b,
                            dst_off=0, nbytes=256 * KiB)
        mem.caches.invalidate(a)
        mem.caches.invalidate(b)
        t_again = timed_copy(sim, mem, core=0, src=a, src_off=0, dst=b,
                             dst_off=0, nbytes=256 * KiB)
        assert t_again == pytest.approx(t_cold, rel=1e-6)

    def test_concurrent_copies_one_core_never_beat_serial(self):
        """Time-sliced engine: N concurrent copies by one core take at
        least as long as the same bytes copied serially."""
        spec = dancer()
        n = 256 * KiB

        def run(concurrent: int) -> float:
            sim = Simulator()
            mem = MemorySystem(sim, spec)
            bufs = [(mem.alloc(n, 0, backed=False), mem.alloc(n, 1, backed=False))
                    for _ in range(concurrent)]
            done = []

            def body(a, b):
                yield mem.copy(4, a, 0, b, 0, n)
                done.append(sim.now)

            for a, b in bufs:
                sim.process(body(a, b))
            sim.run()
            return max(done)

        t1 = run(1)
        t4 = run(4)
        assert t4 >= 4 * t1 * 0.95

    def test_concurrent_copies_different_cores_scale(self):
        spec = dancer()
        n = 256 * KiB
        sim = Simulator()
        mem = MemorySystem(sim, spec)
        done = []

        def body(core, a, b):
            yield mem.copy(core, a, 0, b, 0, n)
            done.append(sim.now)

        for core in range(2):
            a = mem.alloc(n, 0, backed=False)
            b = mem.alloc(n, 0, backed=False)
            sim.process(body(core, a, b))
        sim.run()
        serial_estimate = 2 * n / spec.core.copy_bandwidth
        assert max(done) < serial_estimate

    def test_stats_accumulate(self):
        sim = Simulator()
        mem = MemorySystem(sim, dancer())
        a = mem.alloc(1024, 0)
        b = mem.alloc(1024, 0)

        def body():
            yield mem.copy(0, a, 0, b, 0, 1024)
            yield mem.copy(0, b, 0, a, 0, 512)

        sim.process(body())
        sim.run()
        assert mem.copies == 2
        assert mem.bytes_copied == 1536

    def test_dma_copy_moves_data_without_core(self):
        sim = Simulator()
        mem = MemorySystem(sim, dancer())
        a = mem.alloc(64 * KiB, 0)
        b = mem.alloc(64 * KiB, 1)
        a.data[:] = 3

        def body():
            yield mem.dma_copy(a, 0, b, 0, 64 * KiB)

        sim.process(body())
        sim.run()
        assert (b.data == 3).all()

    def test_bounds_violation_rejected(self):
        sim = Simulator()
        mem = MemorySystem(sim, dancer())
        a = mem.alloc(100, 0)
        b = mem.alloc(100, 0)
        with pytest.raises(SimulationError):
            mem.copy(0, a, 50, b, 0, 100)

    def test_fsb_dirty_intervention_slower_than_l3(self):
        """Reading a peer-written buffer: near-free on Dancer's L3, not on
        Zoot's FSB."""
        def handoff_ratio(spec, writer, reader):
            sim = Simulator()
            mem = MemorySystem(sim, spec)
            a = mem.alloc(512 * KiB, 0, backed=False)
            b = mem.alloc(512 * KiB, 0, backed=False)
            c = mem.alloc(512 * KiB, 0, backed=False)
            t1 = timed_copy(sim, mem, core=writer, src=a, src_off=0, dst=b,
                            dst_off=0, nbytes=512 * KiB)
            # reader now re-reads what writer just wrote (dirty hand-off)
            t2 = timed_copy(sim, mem, core=reader, src=b, src_off=0, dst=c,
                            dst_off=0, nbytes=512 * KiB)
            return t2 / t1

        # same-pair cores on zoot vs same-socket cores on dancer
        assert handoff_ratio(dancer(), 0, 1) < handoff_ratio(zoot(), 0, 1)
