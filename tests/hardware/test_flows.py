"""Flow network: fairness, capacity, completion accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.hardware.flows import FlowNetwork, Resource
from repro.simtime import Simulator


def run_transfer(sim, net, *args, **kwargs):
    times = {}

    def body(key):
        yield net.transfer(*args, **kwargs)
        times[key] = sim.now

    sim.process(body("t"))
    sim.run()
    return times["t"]


class TestSingleFlow:
    def test_rate_limited_by_demand(self, sim):
        net = FlowNetwork(sim)
        res = Resource("r", 100.0)
        t = run_transfer(sim, net, 50.0, demand=10.0, weights={res: 1.0})
        assert t == pytest.approx(5.0)

    def test_rate_limited_by_capacity(self, sim):
        net = FlowNetwork(sim)
        res = Resource("r", 5.0)
        t = run_transfer(sim, net, 50.0, demand=10.0, weights={res: 1.0})
        assert t == pytest.approx(10.0)

    def test_weight_scales_consumption(self, sim):
        net = FlowNetwork(sim)
        res = Resource("r", 10.0)
        # weight 2: the flow consumes 2 units of capacity per byte/s.
        t = run_transfer(sim, net, 50.0, demand=100.0, weights={res: 2.0})
        assert t == pytest.approx(10.0)

    def test_latency_added_before_fluid_phase(self, sim):
        net = FlowNetwork(sim)
        res = Resource("r", 10.0)
        t = run_transfer(sim, net, 100.0, demand=10.0, weights={res: 1.0},
                         latency=3.0)
        assert t == pytest.approx(13.0)

    def test_zero_bytes_is_latency_only(self, sim):
        net = FlowNetwork(sim)
        res = Resource("r", 10.0)
        t = run_transfer(sim, net, 0.0, demand=10.0, weights={res: 1.0},
                         latency=2.0)
        assert t == pytest.approx(2.0)

    def test_negative_bytes_rejected(self, sim):
        net = FlowNetwork(sim)
        with pytest.raises(SimulationError):
            net.transfer(-1.0, 1.0, {Resource("r", 1.0): 1.0})


class TestFairness:
    def test_two_equal_flows_share_equally(self, sim):
        net = FlowNetwork(sim)
        res = Resource("r", 10.0)
        done = {}

        def flow(name):
            yield net.transfer(100.0, demand=100.0, weights={res: 1.0})
            done[name] = sim.now

        sim.process(flow("a"))
        sim.process(flow("b"))
        sim.run()
        assert done["a"] == pytest.approx(20.0)
        assert done["b"] == pytest.approx(20.0)

    def test_demand_capped_flow_leaves_headroom(self, sim):
        net = FlowNetwork(sim)
        res = Resource("r", 10.0)
        done = {}

        def flow(name, demand, nbytes):
            yield net.transfer(nbytes, demand=demand, weights={res: 1.0})
            done[name] = sim.now

        # Flow a capped at 2; flow b takes the remaining 8.
        sim.process(flow("a", 2.0, 20.0))
        sim.process(flow("b", 100.0, 80.0))
        sim.run()
        assert done["a"] == pytest.approx(10.0)
        assert done["b"] == pytest.approx(10.0)

    def test_departure_reallocates_bandwidth(self, sim):
        net = FlowNetwork(sim)
        res = Resource("r", 10.0)
        done = {}

        def flow(name, nbytes):
            yield net.transfer(nbytes, demand=100.0, weights={res: 1.0})
            done[name] = sim.now

        sim.process(flow("short", 50.0))
        sim.process(flow("long", 100.0))
        sim.run()
        # Both run at 5 until t=10 (short done); long then finishes its
        # remaining 50 bytes at full 10 -> t=15.
        assert done["short"] == pytest.approx(10.0)
        assert done["long"] == pytest.approx(15.0)

    def test_late_arrival_slows_existing_flow(self, sim):
        net = FlowNetwork(sim)
        res = Resource("r", 10.0)
        done = {}

        def first():
            yield net.transfer(100.0, demand=100.0, weights={res: 1.0})
            done["first"] = sim.now

        def second():
            yield sim.timeout(5.0)
            yield net.transfer(25.0, demand=100.0, weights={res: 1.0})
            done["second"] = sim.now

        sim.process(first())
        sim.process(second())
        sim.run()
        # first: 50 bytes by t=5; shares at 5/s until second finishes at
        # t=10 (75 done); last 25 bytes at full 10/s -> t=12.5.
        assert done["first"] == pytest.approx(12.5)
        assert done["second"] == pytest.approx(10.0)

    def test_multi_resource_bottleneck(self, sim):
        net = FlowNetwork(sim)
        fast = Resource("fast", 100.0)
        slow = Resource("slow", 4.0)
        t = run_transfer(sim, net, 40.0, demand=50.0,
                         weights={fast: 1.0, slow: 1.0})
        assert t == pytest.approx(10.0)


class TestContentionModel:
    def test_effective_capacity_degrades_past_knee(self):
        res = Resource("mem", 100.0, contention_knee=2, contention_alpha=0.5)
        assert res.effective_capacity(1) == 100.0
        assert res.effective_capacity(2) == 100.0
        assert res.effective_capacity(4) == pytest.approx(50.0)

    def test_zero_alpha_is_constant(self):
        res = Resource("r", 10.0)
        assert res.effective_capacity(1000) == 10.0

    def test_bad_parameters_rejected(self):
        with pytest.raises(SimulationError):
            Resource("r", 10.0, contention_alpha=-1.0)
        with pytest.raises(SimulationError):
            Resource("r", 0.0)


@given(
    flows=st.lists(
        st.tuples(st.floats(min_value=1e3, max_value=1e7),     # bytes
                  st.floats(min_value=1e3, max_value=1e8)),    # demand
        min_size=1, max_size=12,
    ),
    capacity=st.floats(min_value=1e3, max_value=5e7),
)
@settings(max_examples=60, deadline=None)
def test_shared_resource_never_oversubscribed_and_work_conserving(flows, capacity):
    """At no rebalance point may allocated rates exceed capacity, and the
    total transfer time must equal at least total_bytes/capacity."""
    sim = Simulator()
    net = FlowNetwork(sim)
    res = Resource("r", capacity)
    finish = []

    def body(nbytes, demand):
        yield net.transfer(nbytes, demand=demand, weights={res: 1.0})
        finish.append(sim.now)

    for nbytes, demand in flows:
        sim.process(body(nbytes, demand))

    # Probe the allocation whenever the sim advances.
    max_load = 0.0
    while sim.queue_size:
        sim.step()
        load = sum(f.rate * f.weights[res] for f in res.flows)
        max_load = max(max_load, load)
    assert max_load <= capacity * (1 + 1e-6)
    total_bytes = sum(b for b, _ in flows)
    lower_bound = total_bytes / capacity
    assert max(finish) >= lower_bound * (1 - 1e-6)
    assert net.completed_flows == len(flows)
    # each flow may be truncated by up to the completion epsilon (0.25 B)
    assert net.completed_bytes == pytest.approx(total_bytes, abs=len(flows))


@given(
    n=st.integers(min_value=1, max_value=10),
    capacity=st.floats(min_value=1.0, max_value=100.0),
)
@settings(max_examples=40, deadline=None)
def test_equal_flows_finish_simultaneously(n, capacity):
    sim = Simulator()
    net = FlowNetwork(sim)
    res = Resource("r", capacity)
    finish = []

    def body():
        yield net.transfer(100.0, demand=1e9, weights={res: 1.0})
        finish.append(sim.now)

    for _ in range(n):
        sim.process(body())
    sim.run()
    assert len(finish) == n
    expected = 100.0 * n / capacity
    for t in finish:
        assert t == pytest.approx(expected, rel=1e-6)
