"""Range-accurate cache model: residency, LRU eviction, dirty tracking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareConfigError
from repro.hardware.cache import CacheDomain, CacheSystem
from repro.hardware.machines import zoot
from repro.hardware.spec import CacheSpec


def make_domain(capacity=1000):
    return CacheDomain("test", capacity, bandwidth=1e9, cores=[0, 1])


class TestResidency:
    def test_empty_cache_misses(self):
        dom = make_domain()
        assert dom.residency(1, 0, 100) == (0.0, 0.0)

    def test_full_clean_hit(self):
        dom = make_domain()
        dom.touch(1, 0, 100)
        assert dom.residency(1, 0, 100) == (1.0, 0.0)

    def test_dirty_touch_reports_dirty(self):
        dom = make_domain()
        dom.touch(1, 0, 100, dirty=True)
        assert dom.residency(1, 0, 100) == (0.0, 1.0)

    def test_partial_overlap(self):
        dom = make_domain()
        dom.touch(1, 0, 100)
        clean, dirty = dom.residency(1, 50, 100)
        assert clean == pytest.approx(0.5)
        assert dirty == 0.0

    def test_disjoint_ranges_do_not_alias(self):
        dom = make_domain()
        dom.touch(1, 0, 100)
        assert dom.residency(1, 200, 100) == (0.0, 0.0)

    def test_separate_buffers_independent(self):
        dom = make_domain()
        dom.touch(1, 0, 100)
        assert dom.residency(2, 0, 100) == (0.0, 0.0)

    def test_clean_touch_overrides_dirty(self):
        dom = make_domain()
        dom.touch(1, 0, 100, dirty=True)
        dom.touch(1, 0, 100, dirty=False)
        assert dom.residency(1, 0, 100) == (1.0, 0.0)

    def test_streaming_range_keeps_tail(self):
        dom = make_domain(capacity=100)
        dom.touch(1, 0, 1000)  # streams 1000 bytes through a 100-byte cache
        assert dom.used <= 100
        clean, _ = dom.residency(1, 900, 100)
        assert clean == pytest.approx(1.0)
        assert dom.residency(1, 0, 100) == (0.0, 0.0)


class TestEviction:
    def test_lru_buffer_evicted_first(self):
        dom = make_domain(capacity=100)
        dom.touch(1, 0, 60)
        dom.touch(2, 0, 60)  # evicts 20 bytes of buffer 1 (its oldest spans)
        assert dom.used <= 100
        assert dom.resident_bytes(2) == 60
        assert dom.resident_bytes(1) == 40

    def test_touch_refreshes_lru_position(self):
        dom = make_domain(capacity=100)
        dom.touch(1, 0, 50)
        dom.touch(2, 0, 40)
        dom.touch(1, 50, 10)  # buffer 1 now MRU
        dom.touch(3, 0, 50)   # evicts from buffer 2 first
        assert dom.resident_bytes(2) < 40
        assert dom.resident_bytes(1) == 60 or dom.resident_bytes(3) == 50

    def test_evicted_bytes_counter(self):
        dom = make_domain(capacity=100)
        dom.touch(1, 0, 100)
        dom.touch(2, 0, 100)
        assert dom.evicted_bytes == 100

    def test_invalidate_removes_buffer(self):
        dom = make_domain()
        dom.touch(1, 0, 500)
        dom.invalidate(1)
        assert dom.used == 0
        assert dom.residency(1, 0, 500) == (0.0, 0.0)

    def test_flush_clears_everything(self):
        dom = make_domain()
        dom.touch(1, 0, 300)
        dom.touch(2, 0, 300)
        dom.flush()
        assert dom.used == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(HardwareConfigError):
            CacheDomain("bad", 0, 1e9, [0])


class TestCacheSystem:
    def test_zoot_has_pair_domains(self):
        system = CacheSystem(zoot())
        assert len(system.domains) == 8  # 16 cores / 2 per L2 pair
        assert system.domain_of(0) is system.domain_of(1)
        assert system.domain_of(0) is not system.domain_of(2)

    def test_unknown_core_rejected(self):
        system = CacheSystem(zoot())
        with pytest.raises(HardwareConfigError):
            system.domain_of(99)


@given(
    touches=st.lists(
        st.tuples(st.integers(min_value=1, max_value=4),     # buffer id
                  st.integers(min_value=0, max_value=900),   # start
                  st.integers(min_value=1, max_value=400),   # length
                  st.booleans()),                            # dirty
        min_size=1, max_size=60,
    ),
    capacity=st.integers(min_value=64, max_value=2000),
)
@settings(max_examples=120)
def test_cache_invariants(touches, capacity):
    """Total residency never exceeds capacity; per-buffer spans stay
    disjoint; residency fractions are within [0, 1]."""
    dom = CacheDomain("prop", capacity, 1e9, [0])
    for buf, start, length, dirty in touches:
        dom.touch(buf, start, length, dirty=dirty)
        assert 0 <= dom.used <= capacity
        # spans of each buffer are disjoint and sorted-merged consistently
        for ranges in dom._buffers.values():
            spans = sorted((s, e) for s, e, _d in ranges.spans)
            for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
                assert e1 <= s2
            assert sum(e - s for s, e in spans) == ranges.total
        clean, dirty_frac = dom.residency(buf, start, length)
        assert 0.0 <= clean <= 1.0
        assert 0.0 <= dirty_frac <= 1.0
        assert clean + dirty_frac <= 1.0 + 1e-12


@given(
    start=st.integers(min_value=0, max_value=500),
    length=st.integers(min_value=1, max_value=300),
)
@settings(max_examples=60)
def test_touch_then_query_same_range_hits(start, length):
    dom = CacheDomain("prop2", 10_000, 1e9, [0])
    dom.touch(7, start, length)
    clean, dirty = dom.residency(7, start, length)
    assert clean == pytest.approx(1.0)
    assert dirty == 0.0
