"""Differential oracle: vectorized flow updates vs the scalar waterfilling.

The numpy path in :class:`~repro.hardware.flows.FlowNetwork` is a pure
performance rewrite — ``_assign_rates_vec`` / the array ``_advance`` must
be **bitwise** indistinguishable from the scalar oracle, not merely close:
sweep CSVs print 9 decimal places and the serial/parallel equivalence
battery compares them byte-for-byte, so a single ULP of drift anywhere in
the fluid model would surface as a flaky equivalence matrix.

Every test runs the same workload twice — ``vectorized=False`` vs
``vectorized=True`` with ``vector_min_flows = 0`` (numpy on every
rebalance) — and compares completion times, byte accounts, and event
counts with ``==``, never ``approx``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.flows import FlowNetwork, Resource
from repro.simtime import Simulator


def run_workload(vectorized: bool, seed: int, n_resources: int,
                 n_flows: int):
    """One randomized fluid scenario; returns its observable trace.

    Flows start staggered, share random resource subsets with random
    weights/demands/stream factors, and some resources model contention.
    The returned tuple captures everything a sweep could observe: per-flow
    completion times in creation order, final byte/flow accounts, and the
    event count the simulator dispatched.
    """
    rng = random.Random(seed)
    sim = Simulator()
    net = FlowNetwork(sim, vectorized=vectorized)
    net.vector_min_flows = 0
    resources = []
    for i in range(n_resources):
        if rng.random() < 0.4:
            res = Resource(f"r{i}", capacity=rng.uniform(1.0, 100.0),
                           contention_knee=rng.randrange(0, 3),
                           contention_alpha=rng.uniform(0.01, 0.5))
        else:
            res = Resource(f"r{i}", capacity=rng.uniform(1.0, 100.0))
        resources.append(res)
    done: list[tuple[str, float]] = []

    def one_flow(label, start, nbytes, demand, weights, latency, streams):
        yield sim.timeout(start)
        yield net.transfer(nbytes, demand=demand, weights=weights,
                           latency=latency, label=label, streams=streams)
        done.append((label, sim.now))

    for i in range(n_flows):
        chosen = rng.sample(resources, rng.randrange(1, n_resources + 1))
        weights = {res: rng.uniform(0.5, 3.0) for res in chosen}
        streams = {res: rng.choice([0.25, 0.5, 1.0])
                   for res in chosen if rng.random() < 0.5}
        sim.process(one_flow(
            f"f{i}", start=rng.uniform(0.0, 2.0),
            nbytes=rng.uniform(0.0, 1e4), demand=rng.uniform(1.0, 200.0),
            weights=weights, latency=rng.choice([0.0, rng.uniform(0, 0.5)]),
            streams=streams))
    sim.run()
    return (done, net.completed_bytes, net.completed_flows,
            sim.events_processed, sim.now, net)


class TestBitwiseEquivalence:
    @given(seed=st.integers(0, 10**9), n_resources=st.integers(1, 5),
           n_flows=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_random_fluid_scenarios_are_bitwise_identical(
            self, seed, n_resources, n_flows):
        scalar = run_workload(False, seed, n_resources, n_flows)
        vector = run_workload(True, seed, n_resources, n_flows)
        # Completion times, flow counts, and event counts: exact equality,
        # not approx — these feed 9-decimal CSV cells.
        assert scalar[0] == vector[0]
        assert scalar[2:5] == vector[2:5]
        # ``completed_bytes`` is the one tolerance-compared lifetime stat:
        # the scalar loop accumulates it in set-iteration (address) order,
        # so the id-ordered vector sum may differ in the last ULP.
        assert vector[1] == pytest.approx(scalar[1], rel=1e-12)
        assert scalar[5].vector_assignments == 0
        assert vector[5].scalar_assignments == 0

    def test_vector_path_actually_engages(self):
        _done, _b, _f, _e, _now, net = run_workload(True, seed=7,
                                                    n_resources=3, n_flows=8)
        assert net.vector_assignments > 0

    def test_threshold_keeps_small_rebalances_scalar(self):
        sim = Simulator()
        net = FlowNetwork(sim, vectorized=True)  # default vector_min_flows
        res = Resource("r", 10.0)
        fired = []

        def body():
            yield net.transfer(50.0, demand=100.0, weights={res: 1.0})
            fired.append(sim.now)

        sim.process(body())
        sim.run()
        assert fired == [5.0]
        # One flow is far below the threshold: the scalar oracle served it.
        assert net.vector_assignments == 0
        assert net.scalar_assignments > 0

    def test_flag_default_follows_process_flag(self):
        from repro import vector

        sim = Simulator()
        with vector.forced(True):
            assert FlowNetwork(sim).vectorized is True
        with vector.forced(False):
            assert FlowNetwork(sim).vectorized is False
        assert FlowNetwork(sim, vectorized=True).vectorized is True


class TestMidRunFlip:
    def test_flipping_vectorized_mid_run_changes_nothing(self):
        # The paths are indistinguishable, so the flag is safe to flip while
        # flows are in flight; completion times still match the scalar run.
        def run(flip: bool):
            sim = Simulator()
            net = FlowNetwork(sim, vectorized=False)
            net.vector_min_flows = 0
            res_a = Resource("a", 20.0)
            res_b = Resource("b", 8.0)
            done = []

            def one(label, start, nbytes, weights):
                yield sim.timeout(start)
                yield net.transfer(nbytes, demand=50.0, weights=weights)
                done.append((label, sim.now))

            sim.process(one("x", 0.0, 500.0, {res_a: 1.0, res_b: 1.0}))
            sim.process(one("y", 0.1, 300.0, {res_a: 2.0}))
            sim.process(one("z", 0.2, 400.0, {res_b: 1.0}))
            if flip:
                def flipper():
                    yield sim.timeout(0.15)
                    net.vectorized = True

                sim.process(flipper())
            sim.run()
            return done

        assert run(flip=False) == run(flip=True)


class TestPaperMachineFlows:
    def test_memory_transfer_on_paper_machines_is_bitwise_identical(
            self, paper_machine):
        # The real memory-system topology (per-domain buses, contention
        # parameters) on all four paper machines, scalar vs numpy.
        from repro.hardware.memory import MemorySystem

        def run(vectorized: bool):
            sim = Simulator()
            mem = MemorySystem(sim, paper_machine, vectorized=vectorized)
            mem.network.vector_min_flows = 0
            far = paper_machine.n_domains - 1
            last_core = paper_machine.n_cores - 1
            bufs = [(mem.alloc(256 * 1024, 0), mem.alloc(256 * 1024, far)),
                    (mem.alloc(128 * 1024, 0), mem.alloc(128 * 1024, 0)),
                    (mem.alloc(64 * 1024, far), mem.alloc(64 * 1024, 0))]
            done = []

            def copy(i, src, dst):
                yield sim.timeout(i * 1e-7)
                yield mem.copy(0 if i != 2 else last_core,
                               src, 0, dst, 0, src.size)
                done.append((i, sim.now))

            for i, (src, dst) in enumerate(bufs):
                sim.process(copy(i, src, dst))
            sim.run()
            return done, mem.network.completed_bytes, sim.events_processed

        assert run(False) == run(True)
