"""Communicator management: split, dup, rank translation, validation."""

import pytest

from repro.errors import CommunicatorError
from repro.mpi import Job, Machine, stacks


def run(program, nprocs=8, machine="dancer", stack=stacks.TUNED_SM):
    job = Job(Machine.build(machine), nprocs=nprocs, stack=stack)
    return job.run(program)


class TestBasics:
    def test_world_layout(self):
        def program(proc):
            if False:
                yield
            assert proc.comm.world_rank(proc.rank) == proc.rank
            return (proc.comm.size, proc.comm.rank, proc.comm.core_of(3))

        res = run(program)
        assert all(v == (8, r, 3) for r, v in enumerate(res.values))

    def test_rank_validation(self):
        def program(proc):
            if False:
                yield
            with pytest.raises(CommunicatorError):
                proc.comm.world_rank(8)
            with pytest.raises(CommunicatorError):
                proc.comm.isend(99, proc.alloc(8), 0, 8)
            return True

        res = run(program)
        assert all(res.values)

    def test_v_variant_length_validation(self):
        def program(proc):
            buf = proc.alloc(64)
            try:
                yield from proc.comm.gatherv(buf, buf, [8, 8], [0, 8], root=0)
            except CommunicatorError:
                return "rejected"
            return "accepted"

        res = run(program, nprocs=4)
        assert all(v == "rejected" for v in res.values)


class TestSplit:
    def test_split_even_odd(self):
        def program(proc):
            sub = yield from proc.comm.split(color=proc.rank % 2)
            return (sub.rank, sub.size, sub.cid)

        res = run(program)
        evens = [res.values[r] for r in range(0, 8, 2)]
        odds = [res.values[r] for r in range(1, 8, 2)]
        assert [v[0] for v in evens] == [0, 1, 2, 3]
        assert [v[0] for v in odds] == [0, 1, 2, 3]
        assert all(v[1] == 4 for v in res.values)
        assert evens[0][2] != odds[0][2]
        assert len({v[2] for v in evens}) == 1

    def test_split_with_key_reorders(self):
        def program(proc):
            sub = yield from proc.comm.split(color=0, key=-proc.rank)
            return sub.rank

        res = run(program, nprocs=4)
        assert res.values == [3, 2, 1, 0]

    def test_split_undefined_color(self):
        def program(proc):
            sub = yield from proc.comm.split(
                color=None if proc.rank == 0 else 1)
            if sub is None:
                return "excluded"
            return sub.size

        res = run(program, nprocs=4)
        assert res.values[0] == "excluded"
        assert res.values[1:] == [3, 3, 3]

    def test_split_comm_is_usable(self):
        def program(proc):
            sub = yield from proc.comm.split(color=proc.rank // 4)
            buf = proc.alloc_array(1024, "u1")
            if sub.rank == 0:
                buf.array[:] = 100 + proc.rank
            yield from sub.bcast(buf.sim, 0, 1024, root=0)
            return int(buf.array[0])

        res = run(program)
        assert res.values[:4] == [100] * 4
        assert res.values[4:] == [104] * 4

    def test_dup_preserves_layout_new_context(self):
        def program(proc):
            dup = yield from proc.comm.dup()
            assert dup.rank == proc.comm.rank
            assert dup.size == proc.comm.size
            return dup.cid != proc.comm.cid

        res = run(program, nprocs=4)
        assert all(res.values)

    def test_messages_do_not_cross_communicators(self):
        def program(proc):
            dup = yield from proc.comm.dup()
            if proc.rank == 0:
                yield from proc.comm.send_obj(1, "world", tag=5)
                yield from dup.send_obj(1, "dup", tag=5)
                return None
            obj_dup, _ = yield from dup.recv_obj(0, tag=5)
            obj_world, _ = yield from proc.comm.recv_obj(0, tag=5)
            return (obj_world, obj_dup)

        res = run(program, nprocs=2)
        assert res.values[1] == ("world", "dup")


class TestCollectiveSequencing:
    def test_back_to_back_collectives_isolated(self):
        """Consecutive collectives must not steal each other's messages."""
        def program(proc):
            out = []
            for round_no in range(3):
                buf = proc.alloc_array(2048, "u1")
                if proc.rank == round_no:
                    buf.array[:] = round_no + 1
                yield from proc.comm.bcast(buf.sim, 0, 2048, root=round_no)
                out.append(int(buf.array[0]))
            return out

        res = run(program, nprocs=4)
        assert all(v == [1, 2, 3] for v in res.values)

    def test_barrier_synchronizes(self):
        def program(proc):
            yield proc.compute(proc.rank * 1e-4)
            yield from proc.comm.barrier()
            return proc.now

        res = run(program, nprocs=8)
        latest_arrival = 7 * 1e-4
        assert all(t >= latest_arrival for t in res.values)
