"""Point-to-point messaging over the full stack: protocols, ordering,
wildcards, truncation, object messages."""

import numpy as np
import pytest

from repro.errors import TruncationError
from repro.mpi import ANY_SOURCE, ANY_TAG, Job, Machine, stacks
from repro.units import KiB, MiB


def run_pair(program, stack=stacks.TUNED_SM, nprocs=2, machine="dancer"):
    job = Job(Machine.build(machine), nprocs=nprocs, stack=stack)
    return job.run(program)


# message sizes covering every protocol: inline, eager, SM rendezvous,
# KNEM rendezvous
PROTOCOL_SIZES = [16, 1024, 16 * KiB, 256 * KiB]


class TestProtocols:
    @pytest.mark.parametrize("nbytes", PROTOCOL_SIZES)
    @pytest.mark.parametrize("stack", [stacks.TUNED_SM, stacks.TUNED_KNEM],
                             ids=["sm", "knem"])
    def test_payload_integrity(self, nbytes, stack):
        def program(proc):
            buf = proc.alloc_array(nbytes, "u1")
            if proc.rank == 0:
                buf.array[:] = np.arange(nbytes, dtype=np.uint8) % 251
                yield from proc.comm.send(1, buf.sim, 0, nbytes, tag=7)
                return None
            status = yield from proc.comm.recv(0, buf.sim, 0, nbytes, tag=7)
            assert status.source == 0 and status.nbytes == nbytes
            return bytes(buf.array)

        res = run_pair(program, stack=stack)
        expected = bytes(np.arange(nbytes, dtype=np.uint8) % 251)
        assert res.values[1] == expected

    def test_knem_stack_registers_for_large_only(self):
        machine = Machine.build("dancer")
        job = Job(machine, nprocs=2, stack=stacks.TUNED_KNEM)

        def program(proc):
            buf = proc.alloc(256 * KiB, backed=False)
            if proc.rank == 0:
                yield from proc.comm.send(1, buf, 0, 1024)
                yield from proc.comm.send(1, buf, 0, 256 * KiB)
            else:
                yield from proc.comm.recv(0, buf, 0, 1024)
                yield from proc.comm.recv(0, buf, 0, 256 * KiB)

        job.run(program)
        assert machine.knem.stats_registrations == 1  # only the large send

    def test_sm_stack_never_touches_knem(self):
        machine = Machine.build("dancer")
        job = Job(machine, nprocs=2, stack=stacks.TUNED_SM)

        def program(proc):
            buf = proc.alloc(1 * MiB, backed=False)
            if proc.rank == 0:
                yield from proc.comm.send(1, buf, 0, 1 * MiB)
            else:
                yield from proc.comm.recv(0, buf, 0, 1 * MiB)

        job.run(program)
        assert machine.knem.stats_registrations == 0
        assert machine.knem.stats_copies == 0


class TestOrderingAndWildcards:
    def test_nonovertaking_same_tag(self):
        def program(proc):
            if proc.rank == 0:
                for i in range(5):
                    buf = proc.alloc_array(64, "u1")
                    buf.array[:] = i
                    yield from proc.comm.send(1, buf.sim, 0, 64, tag=0)
                return None
            seen = []
            for _ in range(5):
                buf = proc.alloc_array(64, "u1")
                yield from proc.comm.recv(0, buf.sim, 0, 64, tag=0)
                seen.append(int(buf.array[0]))
            return seen

        res = run_pair(program)
        assert res.values[1] == [0, 1, 2, 3, 4]

    def test_tag_selective_reordering(self):
        def program(proc):
            if proc.rank == 0:
                a = proc.alloc_array(64, "u1"); a.array[:] = 1
                b = proc.alloc_array(64, "u1"); b.array[:] = 2
                yield from proc.comm.send(1, a.sim, 0, 64, tag="first")
                yield from proc.comm.send(1, b.sim, 0, 64, tag="second")
                return None
            buf = proc.alloc_array(64, "u1")
            yield from proc.comm.recv(0, buf.sim, 0, 64, tag="second")
            second = int(buf.array[0])
            yield from proc.comm.recv(0, buf.sim, 0, 64, tag="first")
            first = int(buf.array[0])
            return (first, second)

        res = run_pair(program)
        assert res.values[1] == (1, 2)

    def test_any_source_any_tag(self):
        def program(proc):
            if proc.rank == 2:
                got = []
                for _ in range(2):
                    obj, status = yield from proc.comm.recv_obj(ANY_SOURCE,
                                                                ANY_TAG)
                    got.append((status.source, obj))
                return sorted(got)
            yield from proc.comm.send_obj(2, f"from-{proc.rank}")
            return None

        res = run_pair(program, nprocs=3)
        assert res.values[2] == [(0, "from-0"), (1, "from-1")]

    def test_truncation_error(self):
        def program(proc):
            big = proc.alloc(1024)
            small = proc.alloc(100)
            if proc.rank == 0:
                yield from proc.comm.send(1, big, 0, 1024)
            else:
                yield from proc.comm.recv(0, small, 0, 100)

        with pytest.raises(TruncationError):
            run_pair(program)


class TestNonBlocking:
    def test_isend_irecv_pairs(self):
        def program(proc):
            n = 64 * KiB
            sendbuf = proc.alloc_array(n, "u1")
            recvbuf = proc.alloc_array(n, "u1")
            sendbuf.array[:] = proc.rank + 10
            peer = 1 - proc.rank
            rr = proc.comm.irecv(peer, recvbuf.sim, 0, n)
            sr = proc.comm.isend(peer, sendbuf.sim, 0, n)
            yield sr.event
            status = yield rr.event
            assert status.source == peer
            return int(recvbuf.array[0])

        res = run_pair(program)
        assert res.values == [11, 10]

    def test_sendrecv_bidirectional(self):
        def program(proc):
            n = 32 * KiB
            s = proc.alloc_array(n, "u1")
            r = proc.alloc_array(n, "u1")
            s.array[:] = proc.rank + 1
            peer = 1 - proc.rank
            yield from proc.comm.sendrecv(peer, s.sim, 0, n, peer, r.sim, 0, n)
            return int(r.array[0])

        res = run_pair(program)
        assert res.values == [2, 1]

    def test_request_completes_once(self):
        def program(proc):
            if proc.rank == 0:
                buf = proc.alloc(128)
                req = proc.comm.isend(1, buf, 0, 128)
                yield req.event
                assert req.complete
                return None
            buf = proc.alloc(128)
            req = proc.comm.irecv(0, buf, 0, 128)
            status = yield req.event
            assert req.status is status
            return None

        run_pair(program)


class TestObjectMessages:
    def test_roundtrip_objects(self):
        def program(proc):
            if proc.rank == 0:
                yield from proc.comm.send_obj(1, {"cookie": 0xA1, "len": 9})
                obj, _ = yield from proc.comm.recv_obj(1)
                return obj
            obj, st = yield from proc.comm.recv_obj(0)
            yield from proc.comm.send_obj(0, obj["cookie"] + 1)
            return st.payload

        res = run_pair(program)
        assert res.values[0] == 0xA2
        assert res.values[1] == {"cookie": 0xA1, "len": 9}

    def test_object_and_buffer_tags_do_not_collide(self):
        def program(proc):
            if proc.rank == 0:
                buf = proc.alloc_array(64, "u1")
                buf.array[:] = 42
                yield from proc.comm.send_obj(1, "ctrl", tag=1)
                yield from proc.comm.send(1, buf.sim, 0, 64, tag=2)
                return None
            buf = proc.alloc_array(64, "u1")
            yield from proc.comm.recv(0, buf.sim, 0, 64, tag=2)
            obj, _ = yield from proc.comm.recv_obj(0, tag=1)
            return (obj, int(buf.array[0]))

        res = run_pair(program)
        assert res.values[1] == ("ctrl", 42)


class TestTimingSanity:
    def test_larger_messages_take_longer(self):
        def make(nbytes):
            def program(proc):
                buf = proc.alloc(nbytes, backed=False)
                t0 = proc.now
                if proc.rank == 0:
                    yield from proc.comm.send(1, buf, 0, nbytes)
                else:
                    yield from proc.comm.recv(0, buf, 0, nbytes)
                return proc.now - t0
            return program

        t_small = max(run_pair(make(64 * KiB)).values)
        t_large = max(run_pair(make(4 * MiB)).values)
        assert t_large > 10 * t_small

    def test_knem_faster_than_sm_for_large(self):
        def program(proc):
            n = 4 * MiB
            buf = proc.alloc(n, backed=False)
            t0 = proc.now
            if proc.rank == 0:
                yield from proc.comm.send(1, buf, 0, n)
            else:
                yield from proc.comm.recv(0, buf, 0, n)
            return proc.now - t0

        t_sm = max(run_pair(program, stack=stacks.TUNED_SM).values)
        t_knem = max(run_pair(program, stack=stacks.TUNED_KNEM).values)
        assert t_knem < t_sm

    def test_cross_socket_slower_than_intra(self):
        def program(proc, peer_map):
            n = 1 * MiB
            buf = proc.alloc(n, backed=False)
            me, peer = peer_map
            t0 = proc.now
            if proc.rank == me:
                yield from proc.comm.send(peer, buf, 0, n)
            elif proc.rank == peer:
                yield from proc.comm.recv(me, buf, 0, n)
            return proc.now - t0

        job = Job(Machine.build("dancer"), nprocs=8, stack=stacks.TUNED_KNEM)
        intra = max(job.run(program, (0, 1)).values)
        job2 = Job(Machine.build("dancer"), nprocs=8, stack=stacks.TUNED_KNEM)
        cross = max(job2.run(program, (0, 7)).values)
        assert cross > intra
