"""Machine assembly, Job launching, Proc helpers, stack validation."""

import numpy as np
import pytest

from repro.errors import HardwareConfigError, MpiError
from repro.hardware.machines import dancer
from repro.mpi import Job, Machine, stacks
from repro.mpi.stacks import Stack
from repro.units import KiB


class TestMachine:
    def test_build_by_name_and_spec(self):
        by_name = Machine.build("dancer")
        by_spec = Machine.build(dancer())
        assert by_name.spec.name == by_spec.spec.name == "dancer"

    def test_subsystems_wired(self):
        m = Machine.build("zoot")
        assert m.mem.sim is m.sim
        assert m.knem.mem is m.mem
        assert m.shm.mem is m.mem
        assert m.topology.spec is m.spec
        assert m.distances.matrix.shape == (16, 16)

    def test_clock_advances_across_jobs(self):
        m = Machine.build("dancer")
        job = Job(m, nprocs=2, stack=stacks.TUNED_SM)

        def prog(proc):
            yield proc.compute(1e-3)

        job.run(prog)
        t1 = m.now
        job.run(prog)
        assert m.now > t1

    def test_tracer_disabled_by_default(self):
        m = Machine.build("dancer")
        assert not m.tracer.enabled
        assert Machine.build("dancer", trace=True).tracer.enabled


class TestJob:
    def test_binding_assigns_cores(self):
        m = Machine.build("dancer")
        job = Job(m, nprocs=4, stack=stacks.TUNED_SM, binding="scatter")
        assert [p.core for p in job.procs] == [0, 4, 1, 5]

    def test_oversubscription_rejected(self):
        with pytest.raises(HardwareConfigError):
            Job(Machine.build("dancer"), nprocs=16, stack=stacks.TUNED_SM)

    def test_results_per_rank(self):
        job = Job(Machine.build("dancer"), nprocs=4, stack=stacks.TUNED_SM)

        def prog(proc, base):
            yield proc.compute(1e-6 * (proc.rank + 1))
            return base + proc.rank

        res = job.run(prog, 100)
        assert res.values == [100, 101, 102, 103]
        assert res.elapsed >= 4e-6
        assert len(res.per_rank_elapsed) == 4
        assert res.per_rank_elapsed[3] == max(res.per_rank_elapsed)

    def test_result_tolerates_crashed_ranks(self):
        from repro.mpi.runtime import JobResult

        res = JobResult(values=["a", None, "c"], start=1.0,
                        finish_times=[3.0, None, 2.5], dead_ranks=(1,))
        assert res.survivors == [0, 2]
        assert res.dead_ranks == (1,)
        # aggregates are survivor-only statistics, never a TypeError on None
        assert res.elapsed == 2.0
        assert res.per_rank_elapsed == [2.0, None, 1.5]

    def test_result_with_no_finisher_has_no_elapsed(self):
        from repro.mpi.runtime import JobResult

        res = JobResult(values=[None, None], start=0.0,
                        finish_times=[None, None], dead_ranks=(0, 1))
        assert res.survivors == []
        assert res.elapsed is None
        assert res.per_rank_elapsed == [None, None]

    def test_program_exception_propagates(self):
        job = Job(Machine.build("dancer"), nprocs=2, stack=stacks.TUNED_SM)

        def prog(proc):
            yield proc.compute(1e-9)
            if proc.rank == 1:
                raise ValueError("rank 1 exploded")

        with pytest.raises(ValueError, match="rank 1 exploded"):
            job.run(prog)


class TestProc:
    @pytest.fixture
    def proc(self):
        return Job(Machine.build("dancer"), nprocs=8,
                   stack=stacks.TUNED_SM).procs[5]

    def test_domain_follows_core(self, proc):
        assert proc.core == 5
        assert proc.domain == 1

    def test_alloc_homed_on_own_domain(self, proc):
        buf = proc.alloc(4096)
        assert buf.domain == proc.domain
        assert buf.backed

    def test_alloc_array_typed(self, proc):
        ab = proc.alloc_array(100, dtype="f8")
        assert ab.array.dtype == np.float64
        assert ab.sim.size == 800
        ab.array[:] = 1.5
        assert ab.sim.data[:8].any()

    def test_wrap_copies(self, proc):
        src = np.arange(10, dtype=np.int64)
        ab = proc.wrap(src)
        src[:] = 0
        assert (ab.array == np.arange(10)).all()

    def test_elem_ops_uses_calibration(self, proc):
        ev = proc.elem_ops(1000)
        expected = 1000 * proc.machine.spec.core.elem_op_time
        assert ev.delay == pytest.approx(expected)


class TestStackValidation:
    def test_threshold_must_exceed_eager(self):
        with pytest.raises(MpiError):
            Stack(name="bad", coll="tuned", use_knem_btl=True,
                  eager_limit=64 * KiB, knem_threshold=16 * KiB)

    def test_inline_within_eager(self):
        with pytest.raises(MpiError):
            Stack(name="bad", coll="tuned", use_knem_btl=False,
                  inline_limit=8192, eager_limit=4096)

    def test_with_tuning_replaces_only_tuning(self):
        s = stacks.KNEM_COLL.with_tuning(pipeline=False)
        assert s.name == stacks.KNEM_COLL.name
        assert s.tuning.pipeline is False
        assert stacks.KNEM_COLL.tuning.pipeline is True

    def test_paper_stacks_roster(self):
        names = [s.name for s in stacks.PAPER_STACKS]
        assert names == ["Tuned-SM", "Tuned-KNEM", "MPICH2-SM",
                         "MPICH2-KNEM", "KNEM-Coll"]
        assert not stacks.TUNED_SM.use_knem_btl
        assert stacks.MPICH2_KNEM.knem_threshold == 64 * KiB

    def test_unknown_component_rejected(self):
        from repro.errors import CollectiveError

        bad = Stack(name="x", coll="quantum", use_knem_btl=False)
        with pytest.raises(CollectiveError):
            Job(Machine.build("dancer"), nprocs=2, stack=bad)
