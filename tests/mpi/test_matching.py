"""Matching-engine semantics (MPI ordering rules)."""

from repro.mpi.envelope import EAGER, Envelope
from repro.mpi.matching import ANY_SOURCE, ANY_TAG, MatchEngine, PostedRecv
from repro.mpi.status import Request
from repro.simtime import Simulator


def env(src=0, tag=0, nbytes=8, cid=1):
    return Envelope(kind=EAGER, cid=cid, src=src, tag=tag, nbytes=nbytes)


def posted(source=ANY_SOURCE, tag=ANY_TAG):
    sim = Simulator()
    return PostedRecv(source, tag, None, 0, 0, Request(sim, "recv"))


class TestArrivalPath:
    def test_unmatched_goes_unexpected(self):
        eng = MatchEngine()
        assert eng.incoming(env()) is None
        assert eng.unexpected_count == 1

    def test_matches_oldest_posted(self):
        eng = MatchEngine()
        first = posted(source=0, tag=5)
        second = posted(source=0, tag=5)
        eng.post(first)
        eng.post(second)
        assert eng.incoming(env(src=0, tag=5)) is first
        assert eng.incoming(env(src=0, tag=5)) is second

    def test_source_filter(self):
        eng = MatchEngine()
        r = posted(source=3, tag=ANY_TAG)
        eng.post(r)
        assert eng.incoming(env(src=2)) is None
        assert eng.incoming(env(src=3)) is r

    def test_tag_filter(self):
        eng = MatchEngine()
        r = posted(source=ANY_SOURCE, tag="x")
        eng.post(r)
        assert eng.incoming(env(tag="y")) is None
        assert eng.incoming(env(tag="x")) is r

    def test_tuple_tags(self):
        eng = MatchEngine()
        r = posted(tag=("coll", 3, 1))
        eng.post(r)
        assert eng.incoming(env(tag=("coll", 3, 0))) is None
        assert eng.incoming(env(tag=("coll", 3, 1))) is r

    def test_skips_nonmatching_posted(self):
        eng = MatchEngine()
        narrow = posted(source=1, tag=9)
        wide = posted(source=ANY_SOURCE, tag=ANY_TAG)
        eng.post(narrow)
        eng.post(wide)
        assert eng.incoming(env(src=0, tag=0)) is wide
        assert eng.posted_count == 1


class TestPostPath:
    def test_matches_oldest_unexpected(self):
        eng = MatchEngine()
        e1, e2 = env(tag=7), env(tag=7)
        eng.incoming(e1)
        eng.incoming(e2)
        assert eng.post(posted(tag=7)) is e1
        assert eng.post(posted(tag=7)) is e2
        assert eng.idle()

    def test_wildcard_source_takes_first_arrival(self):
        eng = MatchEngine()
        ea, eb = env(src=2, tag=0), env(src=1, tag=0)
        eng.incoming(ea)
        eng.incoming(eb)
        assert eng.post(posted(source=ANY_SOURCE, tag=0)) is ea

    def test_nonovertaking_same_source_tag(self):
        """Messages from one sender with one tag match receives in order."""
        eng = MatchEngine()
        envs = [env(src=0, tag=1) for _ in range(5)]
        for e in envs[:3]:
            eng.incoming(e)
        got = [eng.post(posted(source=0, tag=1)) for _ in range(3)]
        assert got == envs[:3]
        recvs = [posted(source=0, tag=1), posted(source=0, tag=1)]
        for r in recvs:
            eng.post(r)
        assert eng.incoming(envs[3]) is recvs[0]
        assert eng.incoming(envs[4]) is recvs[1]

    def test_counters(self):
        eng = MatchEngine()
        eng.incoming(env())
        eng.post(posted())
        assert eng.matched == 1
        assert eng.idle()
