"""PML protocol internals: selection boundaries, injection ordering,
unexpected messages, FIN bookkeeping."""

import numpy as np
import pytest

from repro.mpi import Job, Machine, stacks
from repro.mpi.stacks import Stack
from repro.units import KiB


def run2(program, stack=stacks.TUNED_KNEM, machine="dancer", nprocs=2):
    m = Machine.build(machine)
    job = Job(m, nprocs=nprocs, stack=stack)
    return m, job.run(program)


class TestProtocolBoundaries:
    @pytest.mark.parametrize("nbytes,expect_knem,expect_fifo", [
        (64, 0, 0),            # inline
        (4 * KiB, 0, 0),       # eager (temp buffer, not per-pair FIFO)
        (8 * KiB, 0, 1),       # SM rendezvous (below knem threshold)
        (64 * KiB, 1, 0),      # KNEM rendezvous
    ])
    def test_transport_selection(self, nbytes, expect_knem, expect_fifo):
        def program(proc):
            buf = proc.alloc(nbytes, backed=False)
            if proc.rank == 0:
                yield from proc.comm.send(1, buf, 0, nbytes)
            else:
                yield from proc.comm.recv(0, buf, 0, nbytes)

        m, _ = run2(program)
        assert m.knem.stats_registrations == expect_knem
        assert len(m.shm._fifos) == expect_fifo

    def test_exact_threshold_uses_knem(self):
        def program(proc):
            buf = proc.alloc(16 * KiB, backed=False)
            if proc.rank == 0:
                yield from proc.comm.send(1, buf, 0, 16 * KiB)
            else:
                yield from proc.comm.recv(0, buf, 0, 16 * KiB)

        m, _ = run2(program)
        assert m.knem.stats_registrations == 1


class TestInjectionOrdering:
    def test_concurrent_isends_of_mixed_sizes_arrive_in_order(self):
        """A small message posted after a large one to the same peer must
        not overtake it (MPI non-overtaking) even though its protocol
        engine finishes registration earlier."""
        sizes = [256 * KiB, 1 * KiB, 64 * KiB, 64, 32 * KiB]

        def program(proc):
            if proc.rank == 0:
                reqs = []
                for i, n in enumerate(sizes):
                    buf = proc.alloc_array(n, "u1")
                    buf.array[:] = i + 1
                    reqs.append(proc.comm.isend(1, buf.sim, 0, n, tag="t"))
                for r in reqs:
                    yield r.event
                return None
            got = []
            for n in sizes:
                buf = proc.alloc_array(n, "u1")
                yield from proc.comm.recv(0, buf.sim, 0, n, tag="t")
                got.append(int(buf.array[0]))
            return got

        for stack in (stacks.TUNED_SM, stacks.TUNED_KNEM):
            _, res = run2(program, stack=stack)
            assert res.values[1] == [1, 2, 3, 4, 5], stack.name

    def test_ordering_independent_destinations_not_serialized(self):
        """Sends to different peers proceed concurrently."""
        def program(proc):
            n = 512 * KiB
            if proc.rank == 0:
                bufs = [proc.alloc(n, backed=False) for _ in range(3)]
                t0 = proc.now
                reqs = [proc.comm.isend(d + 1, bufs[d], 0, n)
                        for d in range(3)]
                for r in reqs:
                    yield r.event
                return proc.now - t0
            buf = proc.alloc(n, backed=False)
            yield from proc.comm.recv(0, buf, 0, n)
            return None

        _, res = run2(program, nprocs=4)
        # three concurrent 512K sends complete in well under 3x one send
        _, res_one = run2(_single_send_program, nprocs=4)
        assert res.values[0] < 2.2 * res_one.values[0]


def _single_send_program(proc):
    n = 512 * KiB
    if proc.rank == 0:
        buf = proc.alloc(n, backed=False)
        t0 = proc.now
        yield from proc.comm.send(1, buf, 0, n)
        return proc.now - t0
    if proc.rank == 1:
        buf = proc.alloc(n, backed=False)
        yield from proc.comm.recv(0, buf, 0, n)
    return None


class TestUnexpectedMessages:
    @pytest.mark.parametrize("nbytes", [64, 2 * KiB, 8 * KiB, 128 * KiB])
    def test_send_before_recv_posted(self, nbytes):
        """Unexpected-queue path for every protocol class."""
        def program(proc):
            buf = proc.alloc_array(nbytes, "u1")
            if proc.rank == 0:
                buf.array[:] = 99
                yield from proc.comm.send(1, buf.sim, 0, nbytes)
                return None
            yield proc.compute(1e-3)  # guarantee the message arrives first
            yield from proc.comm.recv(0, buf.sim, 0, nbytes)
            return int(buf.array[-1])

        _, res = run2(program)
        assert res.values[1] == 99

    def test_many_unexpected_matched_in_order(self):
        def program(proc):
            if proc.rank == 0:
                for i in range(8):
                    yield from proc.comm.send_obj(1, i, tag="u")
                return None
            yield proc.compute(1e-3)
            got = []
            for _ in range(8):
                obj, _st = yield from proc.comm.recv_obj(0, tag="u")
                got.append(obj)
            return got

        _, res = run2(program)
        assert res.values[1] == list(range(8))


class TestEndpointState:
    def test_no_leaked_regions_or_waiters_after_traffic(self):
        def program(proc):
            peer = 1 - proc.rank
            for n in (64, 8 * KiB, 128 * KiB):
                s = proc.alloc(n, backed=False)
                r = proc.alloc(n, backed=False)
                yield from proc.comm.sendrecv(peer, s, 0, n, peer, r, 0, n)

        m, _ = run2(program)
        assert m.knem.live_regions == 0
        for proc_ep in [p.pml for p in []]:
            pass
        # all matching queues drained
        job = Job(Machine.build("dancer"), nprocs=2, stack=stacks.TUNED_KNEM)
        job.run(program)
        for p in job.procs:
            assert all(eng.idle() for eng in p.pml.engines.values())
            assert not p.pml._fin_waiters

    def test_message_counters(self):
        def program(proc):
            if proc.rank == 0:
                buf = proc.alloc(1 * KiB, backed=False)
                yield from proc.comm.send(1, buf, 0, 1 * KiB)
                return proc.pml.sent_messages
            buf = proc.alloc(1 * KiB, backed=False)
            yield from proc.comm.recv(0, buf, 0, 1 * KiB)
            return proc.pml.received_messages

        _, res = run2(program)
        assert res.values == [1, 1]
