"""Shared fixtures: machines, memory systems, and small job builders."""

from __future__ import annotations

import pytest

from repro.hardware.machines import dancer, ig, numa_machine, saturn, smp_machine, zoot
from repro.hardware.memory import MemorySystem
from repro.mpi.runtime import Job, Machine
from repro.simtime import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def small_smp():
    """A 4-core single-domain machine (fast tests)."""
    return smp_machine(name="tiny-smp", n_sockets=1, cores_per_socket=4)


@pytest.fixture
def small_numa():
    """A 2-domain, 8-core NUMA machine (fast tests)."""
    return numa_machine(name="tiny-numa", n_domains=2, cores_per_socket=4)


@pytest.fixture
def mem(sim, small_numa) -> MemorySystem:
    return MemorySystem(sim, small_numa)


@pytest.fixture(params=["zoot", "dancer", "saturn", "ig"])
def paper_machine(request):
    return {"zoot": zoot, "dancer": dancer, "saturn": saturn, "ig": ig}[request.param]()


def make_job(spec_or_name, nprocs, stack) -> Job:
    machine = Machine.build(spec_or_name)
    return Job(machine, nprocs=nprocs, stack=stack)


@pytest.fixture
def job_factory():
    return make_job
