"""Shared-memory layer: mailboxes, FIFO segments, latency model."""

import pytest

from repro.errors import ShmError
from repro.hardware.machines import dancer, ig, zoot
from repro.hardware.memory import MemorySystem
from repro.kernel.costs import KernelCosts
from repro.kernel.shm import FifoSegment, ShmWorld, mailbox_latency
from repro.simtime import Simulator


@pytest.fixture
def world():
    sim = Simulator()
    spec = dancer()
    mem = MemorySystem(sim, spec)
    return sim, spec, mem, ShmWorld(sim, spec, mem)


class TestMailboxLatency:
    def test_monotone_with_distance(self):
        spec = ig()
        same_core = mailbox_latency(spec, 0, 0)
        same_socket = mailbox_latency(spec, 0, 1)
        same_board = mailbox_latency(spec, 0, 6)
        cross_board = mailbox_latency(spec, 0, 47)
        assert same_core < same_socket < same_board < cross_board

    def test_symmetry(self):
        spec = ig()
        for a, b in ((0, 5), (0, 13), (3, 42)):
            assert mailbox_latency(spec, a, b) == mailbox_latency(spec, b, a)

    def test_zoot_same_domain_uses_socket_distance(self):
        spec = zoot()
        assert mailbox_latency(spec, 0, 1) < mailbox_latency(spec, 0, 4)


class TestMailbox:
    def test_post_delivers_after_latency(self, world):
        sim, spec, _mem, shm = world
        box = shm.mailbox("x", owner_core=4)
        got = []

        def receiver():
            v = yield box.recv()
            got.append((v, sim.now))

        def sender():
            yield from box.post(0, "hello")

        sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert got[0][0] == "hello"
        assert got[0][1] > 0

    def test_fifo_order_per_sender(self, world):
        sim, _spec, _mem, shm = world
        box = shm.mailbox("y", owner_core=1)
        got = []

        def sender():
            for i in range(5):
                yield from box.post(0, i)

        def receiver():
            for _ in range(5):
                got.append((yield box.recv()))

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_ownership_conflict_rejected(self, world):
        _sim, _spec, _mem, shm = world
        shm.mailbox("z", owner_core=0)
        with pytest.raises(ShmError):
            shm.mailbox("z", owner_core=1)

    def test_mailbox_reuse_same_owner(self, world):
        _sim, _spec, _mem, shm = world
        a = shm.mailbox("w", owner_core=2)
        b = shm.mailbox("w", owner_core=2)
        assert a is b


class TestFifoSegment:
    def test_slots_cycle_through_indices(self, world):
        sim, spec, mem, shm = world
        fifo = shm.fifo(0, 4, fragment_size=1024, n_slots=2)
        seen = []

        def sender():
            for i in range(4):
                slot = yield fifo.acquire_slot()
                seen.append(slot)
                fifo.publish(slot, 1024)

        def receiver():
            for _ in range(4):
                slot, n, _meta = yield fifo.next_full()
                assert n == 1024
                fifo.release_slot(slot)

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert sorted(set(seen)) == [0, 1]

    def test_backpressure_blocks_sender(self, world):
        sim, _spec, _mem, shm = world
        fifo = shm.fifo(0, 4, fragment_size=64, n_slots=2)
        progress = []

        def sender():
            for i in range(3):
                slot = yield fifo.acquire_slot()
                progress.append((i, sim.now))
                fifo.publish(slot, 64)

        def slow_receiver():
            yield sim.timeout(1.0)
            slot, _n, _ = yield fifo.next_full()
            fifo.release_slot(slot)

        sim.process(sender())
        sim.process(slow_receiver())
        sim.run(until=10.0)
        # third acquisition had to wait for the slow receiver's release
        assert progress[2][1] >= 1.0

    def test_buffer_homed_on_receiver_domain(self, world):
        _sim, spec, _mem, shm = world
        fifo = shm.fifo(0, 4)  # sender socket 0, receiver socket 1
        assert fifo.buffer.domain == spec.core_domain(4)

    def test_per_pair_caching(self, world):
        _sim, _spec, _mem, shm = world
        assert shm.fifo(0, 4) is shm.fifo(0, 4)
        assert shm.fifo(0, 4) is not shm.fifo(4, 0)

    def test_bad_parameters_rejected(self, world):
        sim, spec, mem, _shm = world
        with pytest.raises(ShmError):
            FifoSegment(mem, spec, KernelCosts(), 0, 1, fragment_size=0,
                        n_slots=4)
        fifo = FifoSegment(mem, spec, KernelCosts(), 0, 1, 64, 2)
        with pytest.raises(ShmError):
            fifo.slot_offset(2)
        with pytest.raises(ShmError):
            fifo.release_slot(5)
