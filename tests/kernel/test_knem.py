"""KNEM driver: regions, cookies, direction control, partial access, costs."""

import numpy as np
import pytest

from repro.errors import KnemBoundsError, KnemInvalidCookie, KnemPermissionError
from repro.hardware.machines import dancer
from repro.hardware.memory import MemorySystem
from repro.kernel.costs import KernelCosts, PAGE_SIZE
from repro.kernel.knem import FLAG_DMA, PROT_READ, PROT_WRITE, KnemDriver
from repro.simtime import Simulator
from repro.simtime.trace import Tracer


@pytest.fixture
def world():
    sim = Simulator()
    mem = MemorySystem(sim, dancer())
    knem = KnemDriver(sim, mem)
    return sim, mem, knem


def run(sim, gen):
    p = sim.process(gen)
    sim.run()
    return p.value


class TestRegions:
    def test_register_returns_distinct_cookies(self, world):
        sim, mem, knem = world
        buf = mem.alloc(4096, 0)

        def body():
            c1 = yield from knem.create_region(0, buf, 0, 2048, PROT_READ)
            c2 = yield from knem.create_region(0, buf, 2048, 2048, PROT_READ)
            return c1, c2

        c1, c2 = run(sim, body())
        assert c1 != c2
        assert knem.live_regions == 2

    def test_destroy_invalidates_cookie(self, world):
        sim, mem, knem = world
        buf = mem.alloc(4096, 0)

        def body():
            cookie = yield from knem.create_region(0, buf, 0, 4096, PROT_READ)
            yield from knem.destroy_region(0, cookie)
            try:
                yield from knem.copy(1, cookie, 0, buf, 0, 64, write=False)
            except KnemInvalidCookie:
                return "rejected"
            return "allowed"

        assert run(sim, body()) == "rejected"

    def test_double_destroy_rejected(self, world):
        sim, mem, knem = world
        buf = mem.alloc(4096, 0)

        def body():
            cookie = yield from knem.create_region(0, buf, 0, 4096, PROT_READ)
            yield from knem.destroy_region(0, cookie)
            try:
                yield from knem.destroy_region(0, cookie)
            except KnemInvalidCookie:
                return "rejected"
            return "allowed"

        assert run(sim, body()) == "rejected"

    def test_forged_cookie_rejected(self, world):
        sim, mem, knem = world
        buf = mem.alloc(4096, 0)

        def body():
            try:
                yield from knem.copy(0, 0xDEAD, 0, buf, 0, 64, write=False)
            except KnemInvalidCookie:
                return "rejected"
            return "allowed"

        assert run(sim, body()) == "rejected"
        assert knem.stats_failed_ioctls == 1

    def test_region_outside_buffer_rejected(self, world):
        sim, mem, knem = world
        buf = mem.alloc(1024, 0)

        def body():
            try:
                yield from knem.create_region(0, buf, 512, 1024, PROT_READ)
            except Exception as e:
                return type(e).__name__
            return "allowed"

        assert run(sim, body()) == "SimulationError"

    def test_bad_protection_rejected(self, world):
        sim, mem, knem = world
        buf = mem.alloc(1024, 0)

        def body():
            try:
                yield from knem.create_region(0, buf, 0, 1024, 0)
            except KnemPermissionError:
                return "rejected"
            return "allowed"

        assert run(sim, body()) == "rejected"

    def test_registration_cost_scales_with_pages(self, world):
        sim, mem, knem = world
        big = mem.alloc(256 * PAGE_SIZE, 0, backed=False)

        def timed(length):
            def body():
                t0 = sim.now
                cookie = yield from knem.create_region(0, big, 0, length,
                                                       PROT_READ)
                dt = sim.now - t0
                yield from knem.destroy_region(0, cookie)
                return dt
            return run(sim, body())

        t_small = timed(PAGE_SIZE)
        t_big = timed(256 * PAGE_SIZE)
        costs = knem.costs
        assert t_big - t_small == pytest.approx(255 * costs.page_pin)


class TestDirectionControl:
    def test_read_region_rejects_write(self, world):
        sim, mem, knem = world
        buf = mem.alloc(4096, 0)
        local = mem.alloc(4096, 1)

        def body():
            cookie = yield from knem.create_region(0, buf, 0, 4096, PROT_READ)
            try:
                yield from knem.copy(4, cookie, 0, local, 0, 4096, write=True)
            except KnemPermissionError:
                return "rejected"
            return "allowed"

        assert run(sim, body()) == "rejected"

    def test_write_region_rejects_read(self, world):
        sim, mem, knem = world
        buf = mem.alloc(4096, 0)
        local = mem.alloc(4096, 1)

        def body():
            cookie = yield from knem.create_region(0, buf, 0, 4096, PROT_WRITE)
            try:
                yield from knem.copy(4, cookie, 0, local, 0, 4096, write=False)
            except KnemPermissionError:
                return "rejected"
            return "allowed"

        assert run(sim, body()) == "rejected"

    def test_rw_region_allows_both(self, world):
        sim, mem, knem = world
        buf = mem.alloc(4096, 0)
        local = mem.alloc(4096, 1)
        local.data[:] = 9

        def body():
            cookie = yield from knem.create_region(
                0, buf, 0, 4096, PROT_READ | PROT_WRITE)
            yield from knem.copy(4, cookie, 0, local, 0, 4096, write=True)
            yield from knem.copy(4, cookie, 0, local, 0, 4096, write=False)

        run(sim, body())
        assert (buf.data == 9).all()

    def test_write_moves_data_into_region(self, world):
        sim, mem, knem = world
        target = mem.alloc(1024, 0)
        src = mem.alloc(1024, 1)
        src.data[:] = np.arange(1024, dtype=np.uint8) % 251

        def body():
            cookie = yield from knem.create_region(0, target, 0, 1024,
                                                   PROT_WRITE)
            yield from knem.copy(4, cookie, 0, src, 0, 1024, write=True)
            yield from knem.destroy_region(0, cookie)

        run(sim, body())
        assert (target.data == src.data).all()


class TestPartialAccess:
    def test_offset_copy_reads_correct_slice(self, world):
        sim, mem, knem = world
        buf = mem.alloc(4096, 0)
        buf.data[:] = np.arange(4096, dtype=np.uint8) % 251
        local = mem.alloc(1024, 1)

        def body():
            cookie = yield from knem.create_region(0, buf, 0, 4096, PROT_READ)
            yield from knem.copy(4, cookie, 1024, local, 0, 1024, write=False)

        run(sim, body())
        assert (local.data == buf.data[1024:2048]).all()

    def test_region_offset_applies_to_sub_buffer_region(self, world):
        sim, mem, knem = world
        buf = mem.alloc(4096, 0)
        buf.data[:] = np.arange(4096, dtype=np.uint8) % 251
        local = mem.alloc(256, 1)

        def body():
            # region covers buf[1024:3072]; region offset 256 = buf[1280]
            cookie = yield from knem.create_region(0, buf, 1024, 2048,
                                                   PROT_READ)
            yield from knem.copy(4, cookie, 256, local, 0, 256, write=False)

        run(sim, body())
        assert (local.data == buf.data[1280:1536]).all()

    def test_out_of_region_bounds_rejected(self, world):
        sim, mem, knem = world
        buf = mem.alloc(4096, 0)
        local = mem.alloc(4096, 1)

        def body():
            cookie = yield from knem.create_region(0, buf, 0, 2048, PROT_READ)
            try:
                yield from knem.copy(4, cookie, 1024, local, 0, 2048,
                                     write=False)
            except KnemBoundsError:
                return "rejected"
            return "allowed"

        assert run(sim, body()) == "rejected"

    def test_concurrent_partial_readers(self, world):
        """Multiple processes reading disjoint parts of one region — the
        granularity feature the collective component relies on."""
        sim, mem, knem = world
        buf = mem.alloc(8192, 0)
        buf.data[:] = np.arange(8192, dtype=np.uint8) % 251
        outs = [mem.alloc(2048, 1) for _ in range(4)]
        cookie_holder = {}

        def owner():
            cookie_holder["c"] = yield from knem.create_region(
                0, buf, 0, 8192, PROT_READ)

        def reader(i):
            while "c" not in cookie_holder:
                yield sim.timeout(1e-7)
            yield from knem.copy(4 + 0, cookie_holder["c"], i * 2048,
                                 outs[i], 0, 2048, write=False)

        sim.process(owner())
        for i in range(4):
            sim.process(reader(i))
        sim.run()
        for i in range(4):
            assert (outs[i].data == buf.data[i * 2048:(i + 1) * 2048]).all()


class TestAsyncAndDma:
    def test_icopy_returns_event(self, world):
        sim, mem, knem = world
        buf = mem.alloc(4096, 0)
        local = mem.alloc(4096, 1)

        def body():
            cookie = yield from knem.create_region(0, buf, 0, 4096, PROT_READ)
            ev = knem.icopy(4, cookie, 0, local, 0, 4096, write=False)
            assert not ev.triggered
            yield ev

        run(sim, body())

    def test_dma_flag_uses_dma_engine(self, world):
        sim, mem, knem = world
        buf = mem.alloc(64 * 1024, 0)
        buf.data[:] = 5
        local = mem.alloc(64 * 1024, 1)

        def body():
            cookie = yield from knem.create_region(0, buf, 0, 64 * 1024,
                                                   PROT_READ)
            yield from knem.copy(4, cookie, 0, local, 0, 64 * 1024,
                                 write=False, flags=FLAG_DMA)

        run(sim, body())
        assert (local.data == 5).all()

    def test_submit_time_includes_dma_setup(self, world):
        _sim, _mem, knem = world
        assert knem.submit_time(FLAG_DMA) > knem.submit_time(0)


class TestStatistics:
    def test_counters(self, world):
        sim, mem, knem = world
        buf = mem.alloc(4096, 0)
        local = mem.alloc(4096, 1)

        def body():
            cookie = yield from knem.create_region(0, buf, 0, 4096, PROT_READ)
            yield from knem.copy(4, cookie, 0, local, 0, 4096, write=False)
            yield from knem.copy(5, cookie, 0, local, 0, 2048, write=False)
            yield from knem.destroy_region(0, cookie)

        run(sim, body())
        assert knem.stats_registrations == 1
        assert knem.stats_deregistrations == 1
        assert knem.stats_copies == 2
        assert knem.stats_bytes == 6144


class TestDeadCookieConsistency:
    def test_dead_cookie_beats_permission_and_bounds(self, world):
        """A destroyed cookie raises KnemInvalidCookie even when the copy
        also names a forbidden direction and an out-of-bounds range."""
        sim, mem, knem = world
        buf = mem.alloc(4096, 0)
        local = mem.alloc(4096, 1)

        def body():
            cookie = yield from knem.create_region(0, buf, 0, 4096, PROT_READ)
            yield from knem.destroy_region(0, cookie)
            # write=True would be KnemPermissionError, offset 1 MiB would be
            # KnemBoundsError — liveness must win over both.
            try:
                yield from knem.copy(1, cookie, 1 << 20, local, 0, 4096,
                                     write=True)
            except KnemInvalidCookie:
                return "invalid-cookie"
            return "wrong-error"

        assert run(sim, body()) == "invalid-cookie"

    def test_region_check_liveness_first(self, world):
        sim, mem, knem = world
        buf = mem.alloc(4096, 0)

        def body():
            cookie = yield from knem.create_region(0, buf, 0, 4096, PROT_READ)
            region = knem.region(cookie)
            yield from knem.destroy_region(0, cookie)
            return region

        region = run(sim, body())
        assert not region.alive
        with pytest.raises(KnemInvalidCookie):
            region.check(1 << 20, 4096, PROT_WRITE)


class TestLifecycleTrace:
    @pytest.fixture
    def traced_world(self):
        sim = Simulator()
        tracer = Tracer(clock=lambda: sim.now, enabled=True)
        mem = MemorySystem(sim, dancer(), tracer=tracer)
        knem = KnemDriver(sim, mem, tracer=tracer)
        return sim, mem, knem, tracer

    def test_register_and_deregister_events(self, traced_world):
        sim, mem, knem, tracer = traced_world
        buf = mem.alloc(8192, 0, label="exported")

        def body():
            cookie = yield from knem.create_region(0, buf, 4096, 4096,
                                                   PROT_WRITE)
            yield from knem.destroy_region(0, cookie)
            return cookie

        cookie = run(sim, body())
        (reg,) = tracer.select("knem.register")
        assert reg.cookie == cookie
        assert reg.buf == buf.id
        assert reg.buf_label == "exported"
        assert reg.offset == 4096
        assert reg.length == 4096
        assert reg.prot == PROT_WRITE
        (dereg,) = tracer.select("knem.deregister")
        assert dereg.cookie == cookie
        assert dereg.buf == buf.id

    def test_failed_copy_emits_knem_fail(self, traced_world):
        sim, mem, knem, tracer = traced_world
        buf = mem.alloc(4096, 0)
        local = mem.alloc(4096, 1)

        def body():
            cookie = yield from knem.create_region(0, buf, 0, 4096, PROT_READ)
            yield from knem.destroy_region(0, cookie)
            try:
                yield from knem.copy(1, cookie, 0, local, 0, 4096,
                                     write=False)
            except KnemInvalidCookie:
                pass
            return cookie

        cookie = run(sim, body())
        (fail,) = tracer.select("knem.fail")
        assert fail.op == "copy"
        assert fail.error == "KnemInvalidCookie"
        assert fail.cookie == cookie
        assert fail.nbytes == 4096
        assert knem.stats_failed_ioctls == 1

    def test_double_destroy_emits_knem_fail(self, traced_world):
        sim, mem, knem, tracer = traced_world
        buf = mem.alloc(4096, 0)

        def body():
            cookie = yield from knem.create_region(0, buf, 0, 4096, PROT_READ)
            yield from knem.destroy_region(0, cookie)
            try:
                yield from knem.destroy_region(0, cookie)
            except KnemInvalidCookie:
                pass

        run(sim, body())
        fails = list(tracer.select("knem.fail"))
        assert len(fails) == 1
        assert fails[0].op == "destroy"
        assert fails[0].error == "KnemInvalidCookie"


class TestKernelCosts:
    def test_negative_cost_rejected(self):
        with pytest.raises(Exception):
            KernelCosts(syscall=-1.0)

    def test_pin_time_monotone(self):
        c = KernelCosts()
        assert c.pin_time(PAGE_SIZE) < c.pin_time(10 * PAGE_SIZE)
        assert c.unpin_time(0) == 0.0
