"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_kernel_family():
    assert issubclass(errors.KnemInvalidCookie, errors.KnemError)
    assert issubclass(errors.KnemPermissionError, errors.KnemError)
    assert issubclass(errors.KnemBoundsError, errors.KnemError)
    assert issubclass(errors.KnemError, errors.KernelError)
    assert issubclass(errors.ShmError, errors.KernelError)


def test_mpi_family():
    assert issubclass(errors.TruncationError, errors.MpiError)
    assert issubclass(errors.CommunicatorError, errors.MpiError)
    assert issubclass(errors.CollectiveError, errors.MpiError)


def test_deadlock_error_carries_blocked_names():
    e = errors.DeadlockError(["rank3", "rank1"])
    assert e.blocked == ["rank3", "rank1"]
    assert "rank3" in str(e)


def test_routing_is_hardware_config():
    assert issubclass(errors.RoutingError, errors.HardwareConfigError)


def test_catching_base_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.KnemBoundsError("x")
