"""Non-blocking collectives (extension): overlap, ordering, correctness."""

import numpy as np
import pytest

from repro.mpi import Job, Machine, stacks
from repro.units import KiB, MiB


def run(program, stack=stacks.KNEM_COLL, nprocs=8, machine="dancer"):
    job = Job(Machine.build(machine), nprocs=nprocs, stack=stack)
    return job.run(program)


class TestIbcast:
    @pytest.mark.parametrize("stack", [stacks.TUNED_SM, stacks.KNEM_COLL],
                             ids=lambda s: s.name)
    def test_data_delivered(self, stack):
        def program(proc):
            n = 128 * KiB
            buf = proc.alloc_array(n, "u1")
            if proc.rank == 0:
                buf.array[:] = 55
            req = proc.comm.ibcast(buf.sim, 0, n, root=0)
            yield req.event
            return (buf.array == 55).all()

        assert all(run(program, stack=stack).values)

    def test_overlaps_with_compute(self):
        """Compute issued after ibcast must not extend the critical path
        beyond max(bcast, compute) + epsilon."""
        def make(overlap):
            def program(proc):
                n = 2 * MiB
                buf = proc.alloc(n, backed=False)
                t0 = proc.now
                if overlap:
                    req = proc.comm.ibcast(buf, 0, n, root=0)
                    yield proc.compute(1e-3)
                    yield req.event
                else:
                    yield from proc.comm.bcast(buf, 0, n, root=0)
                    yield proc.compute(1e-3)
                return proc.now - t0
            return program

        blocking = max(run(make(False)).values)
        overlapped = max(run(make(True)).values)
        assert overlapped < blocking * 0.85

    def test_two_outstanding_collectives(self):
        """Overlapped collectives keep their payloads separate."""
        def program(proc):
            n = 64 * KiB
            a = proc.alloc_array(n, "u1")
            b = proc.alloc_array(n, "u1")
            if proc.rank == 0:
                a.array[:] = 1
            if proc.rank == 1:
                b.array[:] = 2
            ra = proc.comm.ibcast(a.sim, 0, n, root=0)
            rb = proc.comm.ibcast(b.sim, 0, n, root=1)
            yield ra.event
            yield rb.event
            return (a.array == 1).all() and (b.array == 2).all()

        assert all(run(program).values)


class TestOtherNonblocking:
    def test_igather(self):
        def program(proc):
            n = 32 * KiB
            send = proc.alloc_array(n, "u1")
            send.array[:] = proc.rank + 1
            recv = (proc.alloc_array(n * proc.comm.size, "u1")
                    if proc.rank == 0 else None)
            req = proc.comm.igather(send.sim, recv.sim if recv else None,
                                    n, root=0)
            yield req.event
            if proc.rank:
                return True
            return all((recv.array[r * n:(r + 1) * n] == r + 1).all()
                       for r in range(proc.comm.size))

        assert all(run(program).values)

    def test_iallgather_and_ialltoall(self):
        def program(proc):
            P = proc.comm.size
            n = 16 * KiB
            s1 = proc.alloc_array(n, "u1")
            s1.array[:] = proc.rank + 1
            r1 = proc.alloc_array(n * P, "u1")
            s2 = proc.alloc_array(n * P, "u1")
            for r in range(P):
                s2.array[r * n:(r + 1) * n] = (proc.rank * P + r) % 251
            r2 = proc.alloc_array(n * P, "u1")
            q1 = proc.comm.iallgather(s1.sim, r1.sim, n)
            yield q1.event
            q2 = proc.comm.ialltoall(s2.sim, r2.sim, n)
            yield q2.event
            ok = all((r1.array[r * n:(r + 1) * n] == r + 1).all()
                     for r in range(P))
            ok &= all((r2.array[r * n:(r + 1) * n] == (r * P + proc.rank) % 251).all()
                      for r in range(P))
            return ok

        assert all(run(program).values)

    def test_ibarrier_releases_only_after_all_arrive(self):
        def program(proc):
            yield proc.compute((proc.rank + 1) * 1e-4)
            req = proc.comm.ibarrier()
            yield req.event
            return proc.now

        res = run(program, nprocs=4)
        assert all(t >= 4e-4 for t in res.values)
