"""Three-level (board-aware) broadcast hierarchy — the future-work extension."""

import numpy as np
import pytest

from repro.coll.hierarchy import build_board_tree
from repro.mpi import Job, Machine, stacks
from repro.mpi.communicator import CollCtx
from repro.units import KiB, MiB

HIER3 = stacks.KNEM_COLL.with_tuning(hierarchy_levels=3)


def make_ctx(machine="ig", nprocs=48, root=0):
    job = Job(Machine.build(machine), nprocs=nprocs, stack=HIER3)
    return CollCtx(job.procs[0].comm, seq=1)


class TestBoardTree:
    def test_spanning_tree(self):
        tree = build_board_tree(make_ctx(), root=0)
        reached = {0}
        frontier = [0]
        while frontier:
            r = frontier.pop()
            for c in tree.children[r]:
                assert c not in reached
                assert tree.parent[c] == r
                reached.add(c)
                frontier.append(c)
        assert reached == set(range(48))

    def test_one_interboard_edge(self):
        """Exactly one tree edge crosses the board boundary (vs 4 in the
        two-level tree)."""
        ctx = make_ctx()
        spec = Machine.build("ig").spec
        tree = build_board_tree(ctx, root=0)
        crossing = [
            (p, c)
            for c, p in enumerate(tree.parent) if p is not None
            if spec.core_board(c) != spec.core_board(p)
        ]
        assert len(crossing) == 1
        assert crossing[0][0] == 0  # root feeds the far board's leader

    def test_roles(self):
        tree = build_board_tree(make_ctx(), root=0)
        roles = [tree.role(r) for r in range(48)]
        assert roles.count("root") == 1
        # 7 non-root domain leaders (one of them also the far board leader)
        assert roles.count("relay") == 7
        assert roles.count("leaf") == 40

    def test_nonzero_root(self):
        tree = build_board_tree(make_ctx(root=30), root=30)
        assert tree.parent[30] is None
        assert tree.role(30) == "root"

    def test_cached(self):
        ctx = make_ctx()
        assert build_board_tree(ctx, 0) is build_board_tree(ctx, 0)


class TestMultilevelBcast:
    def test_data_correct_on_ig(self):
        def program(proc):
            n = 96 * KiB
            buf = proc.alloc_array(n, "u1")
            if proc.rank == 0:
                buf.array[:] = np.arange(n, dtype=np.uint8) % 251
            yield from proc.comm.bcast(buf.sim, 0, n, root=0)
            return np.array_equal(buf.array,
                                  np.arange(n, dtype=np.uint8) % 251)

        job = Job(Machine.build("ig"), nprocs=48, stack=HIER3)
        assert all(job.run(program).values)

    def test_data_correct_nonzero_root_partial_ranks(self):
        def program(proc):
            n = 64 * KiB
            buf = proc.alloc_array(n, "u1")
            if proc.rank == 17:
                buf.array[:] = 123
            yield from proc.comm.bcast(buf.sim, 0, n, root=17)
            return (buf.array == 123).all()

        job = Job(Machine.build("ig"), nprocs=30, stack=HIER3)
        assert all(job.run(program).values)

    def test_falls_back_to_two_level_on_single_board(self):
        machine = Machine.build("dancer")
        job = Job(machine, nprocs=8, stack=HIER3)

        def program(proc):
            buf = proc.alloc(256 * KiB, backed=False)
            yield from proc.comm.bcast(buf, 0, 256 * KiB, root=0)

        job.run(program)
        # two-level path: root + 1 leader registration
        assert machine.knem.stats_registrations == 2

    def test_competitive_with_two_level(self):
        """Relaying across the interlink once (vs once per far-board
        domain) must not cost time at large sizes."""
        def timed(stack):
            job = Job(Machine.build("ig"), nprocs=48, stack=stack)

            def program(proc):
                buf = proc.alloc(4 * MiB, backed=False)
                t0 = proc.now
                yield from proc.comm.bcast(buf, 0, 4 * MiB, root=0)
                return proc.now - t0

            return max(job.run(program).values)

        two = timed(stacks.KNEM_COLL)
        three = timed(HIER3)
        assert three < two * 1.05
