"""Tree/schedule helpers: binomial trees, chains, segmentation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coll.algorithms import (
    binary_parent_children,
    binomial_children,
    binomial_parent,
    binomial_subtree_size,
    chain_neighbors,
    rank_of,
    segments,
    vrank_of,
)


class TestVranks:
    def test_roundtrip(self):
        for size in (1, 5, 8, 48):
            for root in range(size):
                for rank in range(size):
                    v = vrank_of(rank, root, size)
                    assert rank_of(v, root, size) == rank

    def test_root_is_vrank_zero(self):
        assert vrank_of(5, 5, 8) == 0


class TestBinomial:
    def test_known_tree_of_8(self):
        assert binomial_parent(0) is None
        assert binomial_children(0, 8) == [4, 2, 1]
        assert binomial_children(1, 8) == []
        assert binomial_children(2, 8) == [3]
        assert binomial_children(4, 8) == [6, 5]
        assert binomial_children(6, 8) == [7]
        assert binomial_parent(7) == 6
        assert binomial_parent(6) == 4
        assert binomial_parent(5) == 4
        assert binomial_parent(3) == 2

    def test_subtree_sizes_of_8(self):
        assert binomial_subtree_size(0, 8) == 8
        assert binomial_subtree_size(4, 8) == 4
        assert binomial_subtree_size(2, 8) == 2
        assert binomial_subtree_size(1, 8) == 1

    def test_non_pow2_truncation(self):
        assert binomial_children(0, 6) == [4, 2, 1]
        assert binomial_children(4, 6) == [5]
        assert binomial_subtree_size(4, 6) == 2

    def test_single_rank(self):
        assert binomial_children(0, 1) == []


@given(size=st.integers(min_value=1, max_value=64))
@settings(max_examples=64)
def test_binomial_tree_is_spanning(size):
    """Every vrank is reached exactly once from vrank 0."""
    reached = {0}
    frontier = [0]
    while frontier:
        v = frontier.pop()
        for c in binomial_children(v, size):
            assert c not in reached
            assert binomial_parent(c) == v
            reached.add(c)
            frontier.append(c)
    assert reached == set(range(size))


@given(size=st.integers(min_value=1, max_value=64),
       v=st.integers(min_value=0, max_value=63))
@settings(max_examples=80)
def test_binomial_subtree_matches_traversal(size, v):
    if v >= size:
        return

    def count(x):
        return 1 + sum(count(c) for c in binomial_children(x, size))

    assert binomial_subtree_size(v, size) == count(v)


@given(size=st.integers(min_value=1, max_value=40))
@settings(max_examples=40)
def test_binary_tree_is_spanning(size):
    reached = set()
    for v in range(size):
        parent, children = binary_parent_children(v, size)
        if v == 0:
            assert parent is None
        else:
            p, kids = binary_parent_children(parent, size)
            assert v in kids
        reached.add(v)
        assert all(0 < c < size for c in children)
    assert reached == set(range(size))


class TestChain:
    def test_endpoints(self):
        assert chain_neighbors(0, 5) == (None, 1)
        assert chain_neighbors(4, 5) == (3, None)
        assert chain_neighbors(2, 5) == (1, 3)

    def test_single(self):
        assert chain_neighbors(0, 1) == (None, None)


class TestSegments:
    def test_exact_division(self):
        assert segments(100, 25) == [(0, 25), (25, 25), (50, 25), (75, 25)]

    def test_remainder(self):
        assert segments(100, 40) == [(0, 40), (40, 40), (80, 20)]

    def test_zero_bytes(self):
        assert segments(0, 64) == [(0, 0)]

    def test_no_segmentation(self):
        assert segments(100, 0) == [(0, 100)]
        assert segments(100, 200) == [(0, 100)]

    @given(nbytes=st.integers(min_value=1, max_value=1 << 24),
           segsize=st.integers(min_value=256, max_value=1 << 20))
    @settings(max_examples=100, deadline=None)
    def test_partition_property(self, nbytes, segsize):
        segs = segments(nbytes, segsize)
        assert sum(ln for _off, ln in segs) == nbytes
        pos = 0
        for off, ln in segs:
            assert off == pos
            assert 0 < ln <= segsize
            pos += ln
