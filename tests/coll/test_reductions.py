"""Reduce / Allreduce (extension collectives) across components."""

import numpy as np
import pytest

from repro.errors import CollectiveError
from repro.mpi import Job, Machine, stacks


def run(program, *args, stack=stacks.TUNED_SM, nprocs=8, machine="dancer"):
    job = Job(Machine.build(machine), nprocs=nprocs, stack=stack)
    return job.run(program, *args)


ALL = [stacks.TUNED_SM, stacks.TUNED_KNEM, stacks.MPICH2_SM, stacks.KNEM_COLL]
IDS = [s.name for s in ALL]


@pytest.mark.parametrize("stack", ALL, ids=IDS)
class TestReduce:
    def test_sum_of_ranks(self, stack):
        n = 4096  # 1024 int32 elements

        def program(proc, root):
            send = proc.alloc_array(1024, "i4")
            send.array[:] = proc.rank + 1
            recv = (proc.alloc_array(1024, "i4")
                    if proc.rank == root else None)
            yield from proc.comm.reduce(send.sim, recv.sim if recv else None,
                                        n, root=root, dtype="i4", op="sum")
            if proc.rank != root:
                return True
            expected = sum(r + 1 for r in range(proc.comm.size))
            return (recv.array == expected).all()

        for root in (0, 3):
            assert all(run(program, root, stack=stack).values)

    def test_min_max(self, stack):
        def program(proc):
            send = proc.alloc_array(256, "f8")
            send.array[:] = float(proc.rank)
            lo = proc.alloc_array(256, "f8")
            hi = proc.alloc_array(256, "f8")
            yield from proc.comm.reduce(send.sim, lo.sim, 2048, root=0,
                                        dtype="f8", op="min")
            yield from proc.comm.reduce(send.sim, hi.sim, 2048, root=0,
                                        dtype="f8", op="max")
            if proc.rank:
                return True
            return (lo.array == 0.0).all() and \
                (hi.array == float(proc.comm.size - 1)).all()

        assert all(run(program, stack=stack).values)

    def test_allreduce_everyone_gets_result(self, stack):
        def program(proc):
            send = proc.alloc_array(512, "i8")
            send.array[:] = proc.rank
            recv = proc.alloc_array(512, "i8")
            yield from proc.comm.allreduce(send.sim, recv.sim, 4096,
                                           dtype="i8", op="sum")
            expected = sum(range(proc.comm.size))
            return (recv.array == expected).all()

        assert all(run(program, stack=stack).values)


class TestReduceValidation:
    def test_unknown_op_rejected(self):
        def program(proc):
            buf = proc.alloc(64)
            try:
                yield from proc.comm.reduce(buf, buf, 64, root=0, op="xor")
            except CollectiveError:
                return "rejected"
            return "accepted"

        assert all(v == "rejected" for v in run(program, nprocs=2).values)

    def test_misaligned_count_rejected(self):
        def program(proc):
            buf = proc.alloc(10)
            try:
                yield from proc.comm.reduce(buf, buf, 10, root=0, dtype="i4")
            except CollectiveError:
                return "rejected"
            return "accepted"

        assert all(v == "rejected" for v in run(program, nprocs=2).values)

    def test_single_rank(self):
        def program(proc):
            send = proc.alloc_array(16, "i4")
            send.array[:] = 7
            recv = proc.alloc_array(16, "i4")
            yield from proc.comm.allreduce(send.sim, recv.sim, 64, dtype="i4")
            return (recv.array == 7).all()

        assert all(run(program, nprocs=1).values)

    def test_prod(self):
        def program(proc):
            send = proc.alloc_array(8, "i8")
            send.array[:] = 2
            recv = proc.alloc_array(8, "i8")
            yield from proc.comm.allreduce(send.sim, recv.sim, 64,
                                           dtype="i8", op="prod")
            return (recv.array == 2 ** proc.comm.size).all()

        assert all(run(program, nprocs=4).values)
