"""Property-based collective correctness: random sizes, roots, rank counts.

One hypothesis-driven test per collective family, run on the two components
with the most distinct code paths (tuned baseline vs the KNEM component),
on a small NUMA machine so examples stay fast.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hardware.machines import numa_machine
from repro.mpi import Job, Machine, stacks

SPEC = numa_machine(name="prop-numa", n_domains=2, cores_per_socket=3)

STACKS = {"tuned": stacks.TUNED_SM, "knem": stacks.KNEM_COLL}

sizes = st.integers(min_value=1, max_value=96 * 1024)
nprocs_strategy = st.integers(min_value=1, max_value=6)
component = st.sampled_from(sorted(STACKS))

SETTINGS = dict(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def fresh_job(nprocs, comp):
    return Job(Machine.build(SPEC), nprocs=nprocs, stack=STACKS[comp])


def pattern(rank, n):
    return ((np.arange(n) * 7 + rank * 13 + 1) % 251).astype(np.uint8)


@given(nbytes=sizes, nprocs=nprocs_strategy, data=st.data(),
       comp=component)
@settings(**SETTINGS)
def test_bcast_delivers_root_bytes(nbytes, nprocs, data, comp):
    root = data.draw(st.integers(min_value=0, max_value=nprocs - 1))

    def program(proc):
        buf = proc.alloc_array(nbytes, "u1")
        if proc.rank == root:
            buf.array[:] = pattern(root, nbytes)
        yield from proc.comm.bcast(buf.sim, 0, nbytes, root=root)
        return np.array_equal(buf.array, pattern(root, nbytes))

    assert all(fresh_job(nprocs, comp).run(program).values)


@given(count=sizes, nprocs=nprocs_strategy, data=st.data(), comp=component)
@settings(**SETTINGS)
def test_gather_orders_blocks_by_rank(count, nprocs, data, comp):
    root = data.draw(st.integers(min_value=0, max_value=nprocs - 1))

    def program(proc):
        send = proc.alloc_array(count, "u1")
        send.array[:] = pattern(proc.rank, count)
        recv = (proc.alloc_array(count * nprocs, "u1")
                if proc.rank == root else None)
        yield from proc.comm.gather(send.sim, recv.sim if recv else None,
                                    count, root=root)
        if proc.rank != root:
            return True
        return all(
            np.array_equal(recv.array[r * count:(r + 1) * count],
                           pattern(r, count))
            for r in range(nprocs)
        )

    assert all(fresh_job(nprocs, comp).run(program).values)


@given(count=sizes, nprocs=nprocs_strategy, comp=component)
@settings(**SETTINGS)
def test_allgather_equals_gather_everywhere(count, nprocs, comp):
    def program(proc):
        send = proc.alloc_array(count, "u1")
        send.array[:] = pattern(proc.rank, count)
        recv = proc.alloc_array(count * nprocs, "u1")
        yield from proc.comm.allgather(send.sim, recv.sim, count)
        return all(
            np.array_equal(recv.array[r * count:(r + 1) * count],
                           pattern(r, count))
            for r in range(nprocs)
        )

    assert all(fresh_job(nprocs, comp).run(program).values)


@given(count=st.integers(min_value=1, max_value=48 * 1024),
       nprocs=nprocs_strategy, comp=component)
@settings(**SETTINGS)
def test_alltoall_is_block_transpose(count, nprocs, comp):
    def program(proc):
        send = proc.alloc_array(count * nprocs, "u1")
        for r in range(nprocs):
            send.array[r * count:(r + 1) * count] = \
                pattern(proc.rank * nprocs + r, count)
        recv = proc.alloc_array(count * nprocs, "u1")
        yield from proc.comm.alltoall(send.sim, recv.sim, count)
        return all(
            np.array_equal(recv.array[r * count:(r + 1) * count],
                           pattern(r * nprocs + proc.rank, count))
            for r in range(nprocs)
        )

    assert all(fresh_job(nprocs, comp).run(program).values)


@given(nprocs=nprocs_strategy, data=st.data(), comp=component)
@settings(**SETTINGS)
def test_scatterv_ragged_blocks(nprocs, data, comp):
    counts = [data.draw(st.integers(min_value=0, max_value=32 * 1024))
              for _ in range(nprocs)]
    root = data.draw(st.integers(min_value=0, max_value=nprocs - 1))
    displs = list(np.cumsum([0] + counts[:-1]))
    total = sum(counts)

    def program(proc):
        send = None
        if proc.rank == root:
            send = proc.alloc_array(max(total, 1), "u1")
            for r in range(nprocs):
                send.array[displs[r]:displs[r] + counts[r]] = \
                    pattern(r, counts[r])
        recv = proc.alloc_array(max(counts[proc.rank], 1), "u1")
        yield from proc.comm.scatterv(send.sim if send else None, counts,
                                      displs, recv.sim, root=root)
        return np.array_equal(recv.array[:counts[proc.rank]],
                              pattern(proc.rank, counts[proc.rank]))

    assert all(fresh_job(nprocs, comp).run(program).values)
