"""Data correctness of every collective on every component.

Each test moves real numpy payloads through the simulated machine and
verifies MPI semantics byte-for-byte, across components, roots, and the
delegation threshold (sizes below/above KNEM-Coll's 16 KB switch-point).
"""

import numpy as np
import pytest

from repro.mpi import Job, Machine, stacks
from repro.units import KiB

ALL = list(stacks.ALL_STACKS)
IDS = [s.name for s in ALL]

# one size under the KNEM delegation threshold, one over it
SIZES = [4 * KiB, 96 * KiB]


def run(program, *args, stack, nprocs=8, machine="dancer"):
    job = Job(Machine.build(machine), nprocs=nprocs, stack=stack)
    return job.run(program, *args)


def pattern(rank: int, n: int, salt: int = 0) -> np.ndarray:
    return ((np.arange(n) * (rank + 3) + salt) % 251).astype(np.uint8)


@pytest.mark.parametrize("stack", ALL, ids=IDS)
@pytest.mark.parametrize("count", SIZES)
class TestBcast:
    def test_bcast(self, stack, count):
        def program(proc, root):
            buf = proc.alloc_array(count, "u1")
            if proc.rank == root:
                buf.array[:] = pattern(root, count)
            yield from proc.comm.bcast(buf.sim, 0, count, root=root)
            return np.array_equal(buf.array, pattern(root, count))

        for root in (0, 5):
            res = run(program, root, stack=stack)
            assert all(res.values), f"bcast root={root}"

    def test_bcast_offset(self, stack, count):
        def program(proc):
            buf = proc.alloc_array(count + 128, "u1")
            if proc.rank == 0:
                buf.array[64:64 + count] = pattern(0, count)
            yield from proc.comm.bcast(buf.sim, 64, count, root=0)
            ok = np.array_equal(buf.array[64:64 + count], pattern(0, count))
            ok &= (buf.array[:64] == 0).all() and (buf.array[64 + count:] == 0).all()
            return ok

        assert all(run(program, stack=stack).values)


@pytest.mark.parametrize("stack", ALL, ids=IDS)
@pytest.mark.parametrize("count", SIZES)
class TestRooted:
    def test_gather(self, stack, count):
        def program(proc, root):
            send = proc.alloc_array(count, "u1")
            send.array[:] = pattern(proc.rank, count)
            recv = (proc.alloc_array(count * proc.comm.size, "u1")
                    if proc.rank == root else None)
            yield from proc.comm.gather(send.sim, recv.sim if recv else None,
                                        count, root=root)
            if proc.rank != root:
                return True
            return all(
                np.array_equal(recv.array[r * count:(r + 1) * count],
                               pattern(r, count))
                for r in range(proc.comm.size)
            )

        for root in (0, 3):
            assert all(run(program, root, stack=stack).values)

    def test_scatter(self, stack, count):
        def program(proc, root):
            size = proc.comm.size
            send = None
            if proc.rank == root:
                send = proc.alloc_array(count * size, "u1")
                for r in range(size):
                    send.array[r * count:(r + 1) * count] = pattern(r, count)
            recv = proc.alloc_array(count, "u1")
            yield from proc.comm.scatter(send.sim if send else None, recv.sim,
                                         count, root=root)
            return np.array_equal(recv.array, pattern(proc.rank, count))

        for root in (0, 6):
            assert all(run(program, root, stack=stack).values)

    def test_gatherv_ragged(self, stack, count):
        def program(proc):
            size = proc.comm.size
            counts = [count // 2 + 128 * r for r in range(size)]
            displs = list(np.cumsum([0] + counts[:-1]))
            mine = counts[proc.rank]
            send = proc.alloc_array(mine, "u1")
            send.array[:] = pattern(proc.rank, mine, salt=9)
            recv = (proc.alloc_array(sum(counts), "u1")
                    if proc.rank == 1 else None)
            yield from proc.comm.gatherv(send.sim,
                                         recv.sim if recv else None,
                                         counts, displs, root=1)
            if proc.rank != 1:
                return True
            return all(
                np.array_equal(
                    recv.array[displs[r]:displs[r] + counts[r]],
                    pattern(r, counts[r], salt=9))
                for r in range(size)
            )

        assert all(run(program, stack=stack).values)

    def test_scatterv_ragged(self, stack, count):
        def program(proc):
            size = proc.comm.size
            counts = [count // 2 + 64 * r for r in range(size)]
            displs = list(np.cumsum([0] + counts[:-1]))
            send = None
            if proc.rank == 2:
                send = proc.alloc_array(sum(counts), "u1")
                for r in range(size):
                    send.array[displs[r]:displs[r] + counts[r]] = \
                        pattern(r, counts[r], salt=4)
            recv = proc.alloc_array(counts[proc.rank], "u1")
            yield from proc.comm.scatterv(send.sim if send else None, counts,
                                          displs, recv.sim, root=2)
            return np.array_equal(recv.array,
                                  pattern(proc.rank, counts[proc.rank], salt=4))

        assert all(run(program, stack=stack).values)


@pytest.mark.parametrize("stack", ALL, ids=IDS)
@pytest.mark.parametrize("count", SIZES)
class TestAllToAllFamily:
    def test_allgather(self, stack, count):
        def program(proc):
            size = proc.comm.size
            send = proc.alloc_array(count, "u1")
            send.array[:] = pattern(proc.rank, count)
            recv = proc.alloc_array(count * size, "u1")
            yield from proc.comm.allgather(send.sim, recv.sim, count)
            return all(
                np.array_equal(recv.array[r * count:(r + 1) * count],
                               pattern(r, count))
                for r in range(size)
            )

        assert all(run(program, stack=stack).values)

    def test_alltoall(self, stack, count):
        def program(proc):
            size = proc.comm.size
            send = proc.alloc_array(count * size, "u1")
            for r in range(size):
                send.array[r * count:(r + 1) * count] = \
                    pattern(proc.rank * size + r, count)
            recv = proc.alloc_array(count * size, "u1")
            yield from proc.comm.alltoall(send.sim, recv.sim, count)
            return all(
                np.array_equal(recv.array[r * count:(r + 1) * count],
                               pattern(r * size + proc.rank, count))
                for r in range(size)
            )

        assert all(run(program, stack=stack).values)

    def test_alltoallv_ragged(self, stack, count):
        def program(proc):
            size = proc.comm.size
            # rank r sends (count//4 + 64*(r+p)) bytes to rank p
            def block(r, p):
                return count // 4 + 64 * (r + p)

            send_counts = [block(proc.rank, p) for p in range(size)]
            send_displs = list(np.cumsum([0] + send_counts[:-1]))
            recv_counts = [block(p, proc.rank) for p in range(size)]
            recv_displs = list(np.cumsum([0] + recv_counts[:-1]))
            send = proc.alloc_array(sum(send_counts), "u1")
            for p in range(size):
                send.array[send_displs[p]:send_displs[p] + send_counts[p]] = \
                    pattern(proc.rank * size + p, send_counts[p], salt=1)
            recv = proc.alloc_array(sum(recv_counts), "u1")
            yield from proc.comm.alltoallv(
                send.sim, send_counts, send_displs,
                recv.sim, recv_counts, recv_displs,
            )
            return all(
                np.array_equal(
                    recv.array[recv_displs[p]:recv_displs[p] + recv_counts[p]],
                    pattern(p * size + proc.rank, recv_counts[p], salt=1))
                for p in range(size)
            )

        assert all(run(program, stack=stack).values)


@pytest.mark.parametrize("stack", ALL, ids=IDS)
class TestEdgeShapes:
    def test_single_rank_collectives(self, stack):
        def program(proc):
            n = 64 * KiB
            a = proc.alloc_array(n, "u1")
            b = proc.alloc_array(n, "u1")
            a.array[:] = 17
            yield from proc.comm.bcast(a.sim, 0, n, root=0)
            yield from proc.comm.allgather(a.sim, b.sim, n)
            yield from proc.comm.alltoall(a.sim, b.sim, n)
            yield from proc.comm.gather(a.sim, b.sim, n, root=0)
            yield from proc.comm.scatter(a.sim, b.sim, n, root=0)
            yield from proc.comm.barrier()
            return (b.array == 17).all()

        res = run(program, stack=stack, nprocs=1)
        assert res.values == [True]

    def test_two_ranks(self, stack):
        def program(proc):
            n = 32 * KiB
            send = proc.alloc_array(n, "u1")
            send.array[:] = proc.rank + 1
            recv = proc.alloc_array(2 * n, "u1")
            yield from proc.comm.allgather(send.sim, recv.sim, n)
            return (recv.array[:n] == 1).all() and (recv.array[n:] == 2).all()

        res = run(program, stack=stack, nprocs=2)
        assert all(res.values)

    def test_odd_rank_count(self, stack):
        """Non-power-of-two paths (ring fallbacks, binomial remainders)."""
        def program(proc):
            n = 48 * KiB
            size = proc.comm.size
            send = proc.alloc_array(n, "u1")
            send.array[:] = proc.rank + 1
            recv = proc.alloc_array(n * size, "u1")
            yield from proc.comm.allgather(send.sim, recv.sim, n)
            buf = proc.alloc_array(n, "u1")
            if proc.rank == 2:
                buf.array[:] = 99
            yield from proc.comm.bcast(buf.sim, 0, n, root=2)
            return (buf.array == 99).all() and all(
                (recv.array[r * n:(r + 1) * n] == r + 1).all()
                for r in range(size)
            )

        res = run(program, stack=stack, nprocs=7)
        assert all(res.values)

    def test_zero_byte_collectives(self, stack):
        def program(proc):
            buf = proc.alloc_array(16, "u1")
            yield from proc.comm.bcast(buf.sim, 0, 0, root=0)
            yield from proc.comm.gather(buf.sim, buf.sim, 0, root=0)
            return True

        assert all(run(program, stack=stack, nprocs=4).values)


def concat(parts):
    return np.concatenate(parts) if parts else np.zeros(0, dtype="u1")


@pytest.mark.parametrize("stack", ALL, ids=IDS)
class TestDifferentialOracle:
    """Ragged v-collectives against an independently built NumPy oracle.

    The count vectors mix zero-length, tiny, and beyond-threshold entries
    in one call, so each component crosses its delegation and topology
    branches mid-collective; the expected payloads are assembled with plain
    numpy from the same deterministic per-rank patterns and compared
    byte-for-byte with what the ranks hand back.
    """

    # 8 ranks: two silent ranks, sub-cacheline scraps, and three blocks
    # beyond KNEM-Coll's 16 KB switch-point
    COUNTS = [0, 20 * KiB, 3, 40 * KiB, 0, 17, 25 * KiB, KiB]

    @staticmethod
    def displs(counts):
        return list(np.cumsum([0] + list(counts[:-1])))

    def test_scatterv_matches_oracle(self, stack):
        counts, displs = self.COUNTS, self.displs(self.COUNTS)
        parts = [pattern(r, counts[r], salt=11) for r in range(len(counts))]

        def program(proc):
            send = None
            if proc.rank == 3:
                send = proc.wrap(concat(parts))
            recv = proc.alloc_array(max(counts[proc.rank], 1), "u1")
            yield from proc.comm.scatterv(send.sim if send else None, counts,
                                          displs, recv.sim, root=3)
            return recv.array[:counts[proc.rank]].tobytes()

        res = run(program, stack=stack)
        assert res.values == [p.tobytes() for p in parts]

    def test_gatherv_matches_oracle(self, stack):
        counts, displs = self.COUNTS, self.displs(self.COUNTS)
        oracle = concat([pattern(r, counts[r], salt=13)
                         for r in range(len(counts))]).tobytes()

        def program(proc):
            mine = counts[proc.rank]
            send = proc.wrap(pattern(proc.rank, mine, salt=13)) \
                if mine else proc.alloc_array(1, "u1")
            recv = (proc.alloc_array(sum(counts), "u1")
                    if proc.rank == 5 else None)
            yield from proc.comm.gatherv(send.sim, recv.sim if recv else None,
                                         counts, displs, root=5)
            return recv.array.tobytes() if recv is not None else None

        res = run(program, stack=stack)
        assert res.values[5] == oracle

    def test_allgatherv_matches_oracle(self, stack):
        counts, displs = self.COUNTS, self.displs(self.COUNTS)
        oracle = concat([pattern(r, counts[r], salt=15)
                         for r in range(len(counts))]).tobytes()

        def program(proc):
            mine = counts[proc.rank]
            send = proc.wrap(pattern(proc.rank, mine, salt=15)) \
                if mine else proc.alloc_array(1, "u1")
            recv = proc.alloc_array(sum(counts), "u1")
            yield from proc.comm.allgatherv(send.sim, recv.sim, counts,
                                            displs)
            return recv.array.tobytes()

        res = run(program, stack=stack)
        assert res.values == [oracle] * len(counts)

    @pytest.mark.parametrize("regime", ["delegated", "knem"])
    def test_alltoallv_with_holes_matches_oracle(self, stack, regime):
        # zero blocks punched into the exchange; every rank's largest send
        # stays on the same side of the 16 KB switch-point (KNEM-Coll's
        # delegation decision is per-rank)
        base = 512 if regime == "delegated" else 18 * KiB
        nprocs = 8

        def block(r, p):
            return 0 if (r + p) % 3 == 0 else base + 32 * (r + p)

        def payload(r, p):
            return pattern(r * nprocs + p, block(r, p), salt=17)

        oracles = [concat([payload(p, q) for p in range(nprocs)]).tobytes()
                   for q in range(nprocs)]

        def program(proc):
            size = proc.comm.size
            send_counts = [block(proc.rank, p) for p in range(size)]
            recv_counts = [block(p, proc.rank) for p in range(size)]
            send_displs = self.displs(send_counts)
            recv_displs = self.displs(recv_counts)
            send = proc.wrap(concat([payload(proc.rank, p)
                                     for p in range(size)]))
            recv = proc.alloc_array(max(sum(recv_counts), 1), "u1")
            yield from proc.comm.alltoallv(send.sim, send_counts, send_displs,
                                           recv.sim, recv_counts, recv_displs)
            return recv.array[:sum(recv_counts)].tobytes()

        res = run(program, stack=stack, nprocs=nprocs)
        assert res.values == oracles

    def test_single_rank_v_collectives(self, stack):
        n = 24 * KiB
        data = pattern(0, n, salt=19)

        def program(proc):
            send = proc.wrap(data)
            recv = proc.alloc_array(n, "u1")
            yield from proc.comm.scatterv(send.sim, [n], [0], recv.sim, root=0)
            ok = np.array_equal(recv.array, data)
            recv.array[:] = 0
            yield from proc.comm.gatherv(send.sim, recv.sim, [n], [0], root=0)
            ok &= np.array_equal(recv.array, data)
            recv.array[:] = 0
            yield from proc.comm.allgatherv(send.sim, recv.sim, [n], [0])
            ok &= np.array_equal(recv.array, data)
            recv.array[:] = 0
            yield from proc.comm.alltoallv(send.sim, [n], [0],
                                           recv.sim, [n], [0])
            return ok and np.array_equal(recv.array, data)

        assert run(program, stack=stack, nprocs=1).values == [True]


@pytest.mark.parametrize("machine,nprocs", [("zoot", 16), ("ig", 48)],
                         ids=["zoot16", "ig48"])
def test_knem_coll_full_machine(machine, nprocs):
    """KNEM-Coll end-to-end on the full paper machines (hierarchy engaged)."""
    count = 64 * KiB

    def program(proc):
        size = proc.comm.size
        buf = proc.alloc_array(count, "u1")
        if proc.rank == 0:
            buf.array[:] = pattern(0, count)
        yield from proc.comm.bcast(buf.sim, 0, count, root=0)
        ok = np.array_equal(buf.array, pattern(0, count))
        send = proc.alloc_array(1024, "u1")
        send.array[:] = proc.rank % 251
        recv = proc.alloc_array(1024 * size, "u1") if proc.rank == 0 else None
        yield from proc.comm.gather(send.sim, recv.sim if recv else None,
                                    1024, root=0)
        if proc.rank == 0:
            ok &= all((recv.array[r * 1024:(r + 1) * 1024] == r % 251).all()
                      for r in range(size))
        return ok

    job = Job(Machine.build(machine), nprocs=nprocs, stack=stacks.KNEM_COLL)
    assert all(job.run(program).values)
