"""Decision functions of the baseline components and hierarchy building."""

import pytest

from repro.coll.hierarchy import build_tree, hierarchy_worthwhile
from repro.mpi import Job, Machine, stacks
from repro.mpi.communicator import CollCtx
from repro.units import KiB, MiB


def make_ctx(machine="ig", nprocs=48, stack=stacks.KNEM_COLL, binding="linear"):
    job = Job(Machine.build(machine), nprocs=nprocs, stack=stack,
              binding=binding)
    proc = job.procs[0]
    return CollCtx(proc.comm, seq=1)


class TestHierarchyTree:
    def test_ig_tree_has_eight_groups(self):
        tree = build_tree(make_ctx(), root=0)
        assert len(tree.groups) == 8
        assert all(len(g) == 6 for g in tree.groups)
        assert tree.root == 0
        assert tree.leaders[0] == 0  # root's domain first, root leads it

    def test_groups_follow_numa_domains(self):
        tree = build_tree(make_ctx(), root=0)
        spec = Machine.build("ig").spec
        for group in tree.groups:
            domains = {spec.core_domain(r) for r in group}  # linear binding
            assert len(domains) == 1

    def test_nonzero_root_leads_its_group(self):
        tree = build_tree(make_ctx(), root=13)
        group = tree.group_of(13)
        assert group[0] == 13
        assert tree.role(13) == "root"
        assert tree.leader_of(14) == 13  # 13 and 14 share domain 2

    def test_roles_partition(self):
        tree = build_tree(make_ctx(), root=0)
        roles = [tree.role(r) for r in range(48)]
        assert roles.count("root") == 1
        assert roles.count("leader") == 7
        assert roles.count("leaf") == 40

    def test_leaves_of(self):
        tree = build_tree(make_ctx(), root=0)
        assert tree.leaves_of(0) == [1, 2, 3, 4, 5]

    def test_rank_order_tree_ignores_topology(self):
        ctx = make_ctx(binding="scatter")
        aware = build_tree(ctx, root=0, topology_aware=True)
        naive = build_tree(ctx, root=0, topology_aware=False)
        assert naive.groups != aware.groups
        # naive groups are contiguous rank chunks
        flat = [r for g in naive.groups for r in sorted(g)]
        assert flat == sorted(flat)

    def test_tree_cached_per_root(self):
        ctx = make_ctx()
        t1 = build_tree(ctx, root=0)
        t2 = build_tree(ctx, root=0)
        t3 = build_tree(ctx, root=7)
        assert t1 is t2
        assert t3 is not t1

    def test_worthwhile_only_on_numa(self):
        assert hierarchy_worthwhile(make_ctx("ig", 48))
        assert not hierarchy_worthwhile(make_ctx("zoot", 16))
        # ranks confined to one domain: not worthwhile even on NUMA
        assert not hierarchy_worthwhile(make_ctx("dancer", 4))
        assert hierarchy_worthwhile(make_ctx("dancer", 8))


class TestTunedDecisions:
    """The decision function selects different algorithms by size; observable
    through the message pattern (sent-message counts per rank)."""

    def _messages(self, machine, nprocs, stack, nbytes):
        m = Machine.build(machine)
        job = Job(m, nprocs=nprocs, stack=stack)

        def prog(proc):
            buf = proc.alloc(nbytes, backed=False)
            yield from proc.comm.bcast(buf, 0, nbytes, root=0)
            return proc.pml.sent_messages

        res = job.run(prog)
        return res.values

    def test_binomial_small_bcast(self):
        sent = self._messages("dancer", 8, stacks.TUNED_SM, 8 * KiB)
        # binomial: rank 0 sends log2(8)=3; leaves send none
        assert sent[0] == 3
        assert sent[7] == 0

    def test_chain_large_bcast(self):
        sent = self._messages("dancer", 8, stacks.TUNED_SM, 2 * MiB)
        # chain with 128K segments: 16 messages per non-tail rank
        assert sent[0] == 16
        assert sent[3] == 16
        assert sent[7] == 0

    def test_mpich_vdg_large_bcast(self):
        sent = self._messages("dancer", 8, stacks.MPICH2_SM, 2 * MiB)
        # scatter (binomial) + ring allgather: every rank sends ring steps
        assert all(s >= 7 for s in sent)

    def test_knem_delegates_small(self):
        m = Machine.build("dancer")
        job = Job(m, nprocs=8, stack=stacks.KNEM_COLL)

        def prog(proc):
            buf = proc.alloc(8 * KiB, backed=False)
            yield from proc.comm.bcast(buf, 0, 8 * KiB, root=0)
            return proc.pml.sent_messages

        res = job.run(prog)
        assert res.values[0] == 3  # tuned binomial shape
        assert m.knem.stats_registrations == 0


class TestTunedAllgatherSelection:
    def _run(self, nprocs, count, stack=stacks.TUNED_SM):
        m = Machine.build("saturn")
        job = Job(m, nprocs=nprocs, stack=stack)

        def prog(proc):
            send = proc.alloc(count, backed=False)
            recv = proc.alloc(count * proc.comm.size, backed=False)
            yield from proc.comm.allgather(send, recv, count)
            return proc.pml.sent_messages

        return job.run(prog).values

    def test_recursive_doubling_pow2_small(self):
        sent = self._run(8, 16 * KiB)
        assert all(s == 3 for s in sent)  # log2(8) exchanges

    def test_ring_large(self):
        sent = self._run(8, 512 * KiB)
        assert all(s == 7 for s in sent)  # size-1 ring steps

    def test_ring_non_pow2(self):
        sent = self._run(6, 16 * KiB)
        assert all(s == 5 for s in sent)
