"""KNEM-Coll behaviour: persistent registration, direction control,
delegation, rotation, hierarchy use — the paper's mechanisms themselves."""

import pytest

from repro.kernel.knem import PROT_WRITE
from repro.mpi import Job, Machine, stacks
from repro.units import KiB, MiB


def run_on(machine_name, nprocs, stack, program, *args):
    machine = Machine.build(machine_name)
    job = Job(machine, nprocs=nprocs, stack=stack)
    result = job.run(program, *args)
    return machine, result


def bcast_prog(proc, nbytes):
    buf = proc.alloc(nbytes, backed=False)
    yield from proc.comm.bcast(buf, 0, nbytes, root=0)


def gather_prog(proc, nbytes):
    send = proc.alloc(nbytes, backed=False)
    recv = (proc.alloc(nbytes * proc.comm.size, backed=False)
            if proc.rank == 0 else None)
    yield from proc.comm.gather(send, recv, nbytes, root=0)


class TestPersistentRegistration:
    def test_bcast_registrations_independent_of_receiver_count(self):
        """The component registers each exported buffer once regardless of
        how many peers read it (Section III-A): on dancer's two NUMA
        domains that is root + one leader, for 7 receivers."""
        machine, _ = run_on("dancer", 8, stacks.KNEM_COLL, bcast_prog, 1 * MiB)
        assert machine.knem.stats_registrations == 2
        assert machine.knem.stats_copies >= 7

    def test_p2p_path_registers_per_peer(self):
        machine, _ = run_on("dancer", 8, stacks.TUNED_KNEM, bcast_prog, 1 * MiB)
        assert machine.knem.stats_registrations > 1

    def test_regions_released_after_collective(self):
        machine, _ = run_on("dancer", 8, stacks.KNEM_COLL, bcast_prog, 1 * MiB)
        assert machine.knem.live_regions == 0

    def test_hierarchical_registers_root_plus_leaders(self):
        machine, _ = run_on("ig", 48, stacks.KNEM_COLL, bcast_prog, 1 * MiB)
        # root + 7 non-root domain leaders re-export their buffers
        assert machine.knem.stats_registrations == 8
        assert machine.knem.live_regions == 0


class TestDirectionControl:
    def test_gather_uses_write_region(self):
        machine = Machine.build("dancer", trace=True)
        machine.tracer.enabled = True
        job = Job(machine, nprocs=8, stack=stacks.KNEM_COLL)
        job.run(gather_prog, 256 * KiB)
        regs = list(machine.tracer.select("knem.register"))
        assert len(regs) == 1
        assert regs[0].prot == PROT_WRITE
        writes = [r for r in machine.tracer.select("knem.copy") if r.write]
        assert len(writes) == 7  # every non-root wrote its slice

    def test_gather_parallel_writers_faster_than_root_reads(self):
        def timed(stack):
            machine = Machine.build("zoot")
            job = Job(machine, nprocs=16, stack=stack)

            def prog(proc):
                t0 = proc.now
                yield from gather_prog(proc, 512 * KiB)
                return proc.now - t0

            return max(job.run(prog).values)

        with_dir = timed(stacks.KNEM_COLL)
        without_dir = timed(stacks.KNEM_COLL.with_tuning(
            gather_direction_write=False))
        assert without_dir > with_dir * 1.3

    def test_gather_without_direction_still_correct(self):
        import numpy as np
        stack = stacks.KNEM_COLL.with_tuning(gather_direction_write=False)

        def prog(proc):
            n = 64 * KiB
            send = proc.alloc_array(n, "u1")
            send.array[:] = proc.rank + 1
            recv = (proc.alloc_array(n * proc.comm.size, "u1")
                    if proc.rank == 0 else None)
            yield from proc.comm.gather(send.sim,
                                        recv.sim if recv else None, n, root=0)
            if proc.rank:
                return True
            return all((recv.array[r * n:(r + 1) * n] == r + 1).all()
                       for r in range(proc.comm.size))

        _m, res = run_on("dancer", 8, stack, prog)
        assert all(res.values)


class TestDelegation:
    def test_small_messages_bypass_knem(self):
        machine, _ = run_on("dancer", 8, stacks.KNEM_COLL, bcast_prog, 8 * KiB)
        assert machine.knem.stats_registrations == 0

    def test_threshold_boundary(self):
        machine, _ = run_on("dancer", 8, stacks.KNEM_COLL, bcast_prog, 16 * KiB)
        assert machine.knem.stats_registrations >= 1


class TestHierarchy:
    def test_smp_machine_uses_linear(self):
        machine, _ = run_on("zoot", 16, stacks.KNEM_COLL, bcast_prog, 1 * MiB)
        # linear: exactly one region (no leader re-exports)
        assert machine.knem.stats_registrations == 1

    def test_forced_linear_on_numa(self):
        stack = stacks.KNEM_COLL.with_tuning(hierarchical=False)
        machine, _ = run_on("ig", 48, stack, bcast_prog, 1 * MiB)
        assert machine.knem.stats_registrations == 1
        assert machine.knem.stats_copies == 47

    def test_hierarchy_beats_linear_on_ig(self):
        def timed(stack):
            machine = Machine.build("ig")
            job = Job(machine, nprocs=48, stack=stack)

            def prog(proc):
                t0 = proc.now
                yield from bcast_prog(proc, 2 * MiB)
                return proc.now - t0

            return max(job.run(prog).values)

        hier = timed(stacks.KNEM_COLL)
        linear = timed(stacks.KNEM_COLL.with_tuning(hierarchical=False))
        assert linear > 1.8 * hier  # paper: 2.2-2.4x with pipeline ~2.7-3x

    def test_pipeline_beats_no_pipeline_on_ig(self):
        def timed(stack):
            machine = Machine.build("ig")
            job = Job(machine, nprocs=48, stack=stack)

            def prog(proc):
                t0 = proc.now
                yield from bcast_prog(proc, 2 * MiB)
                return proc.now - t0

            return max(job.run(prog).values)

        pipe = timed(stacks.KNEM_COLL)
        nopipe = timed(stacks.KNEM_COLL.with_tuning(pipeline=False))
        assert nopipe > 1.1 * pipe

    def test_topology_aware_beats_rank_order_tree(self):
        def timed(stack):
            machine = Machine.build("ig")
            # scatter binding makes logical rank order disagree with NUMA
            job = Job(machine, nprocs=48, stack=stack, binding="scatter")

            def prog(proc):
                t0 = proc.now
                yield from bcast_prog(proc, 2 * MiB)
                return proc.now - t0

            return max(job.run(prog).values)

        aware = timed(stacks.KNEM_COLL)
        oblivious = timed(stacks.KNEM_COLL.with_tuning(topology_aware=False))
        assert oblivious > aware


class TestAlltoallSchedule:
    def test_rotation_spreads_access(self):
        """With rotation, at step s each rank reads from a distinct peer
        (the schedule is a Latin square); naive order hammers one sender."""
        size = 8
        for step in range(1, size):
            readers = [(rank, (rank + step) % size) for rank in range(size)]
            targets = [t for _r, t in readers]
            assert len(set(targets)) == size  # all distinct at every step

    def test_rotation_faster_than_naive_on_ig(self):
        def timed(stack):
            machine = Machine.build("ig")
            job = Job(machine, nprocs=48, stack=stack)

            def prog(proc):
                n = 128 * KiB
                send = proc.alloc(n * proc.comm.size, backed=False)
                recv = proc.alloc(n * proc.comm.size, backed=False)
                t0 = proc.now
                yield from proc.comm.alltoall(send, recv, n)
                return proc.now - t0

            return max(job.run(prog).values)

        rotated = timed(stacks.KNEM_COLL)
        naive = timed(stacks.KNEM_COLL.with_tuning(rotate_alltoall=False))
        assert naive >= rotated

    def test_alltoall_registrations_one_per_rank(self):
        def prog(proc):
            n = 64 * KiB
            send = proc.alloc(n * proc.comm.size, backed=False)
            recv = proc.alloc(n * proc.comm.size, backed=False)
            yield from proc.comm.alltoall(send, recv, n)

        machine, _ = run_on("dancer", 8, stacks.KNEM_COLL, prog)
        assert machine.knem.stats_registrations == 8
        assert machine.knem.live_regions == 0


class TestDmaOffload:
    def test_dma_bcast_correct_and_uses_engine(self):
        import numpy as np

        stack = stacks.KNEM_COLL.with_tuning(dma_offload=True,
                                             hierarchical=False)
        machine = Machine.build("dancer", trace=True)
        job = Job(machine, nprocs=8, stack=stack)

        def prog(proc):
            n = 256 * KiB
            buf = proc.alloc_array(n, "u1")
            if proc.rank == 0:
                buf.array[:] = 77
            yield from proc.comm.bcast(buf.sim, 0, n, root=0)
            return (buf.array == 77).all()

        res = job.run(prog)
        assert all(res.values)
        dma_copies = [r for r in machine.tracer.select("knem.copy") if r.dma]
        assert len(dma_copies) == 7

    def test_dma_serializes_versus_parallel_cores(self):
        """One DMA engine vs 7 receiver cores: offload frees the cores but
        loses copy parallelism for one-to-all patterns."""
        def timed(stack):
            job = Job(Machine.build("dancer"), nprocs=8, stack=stack)

            def prog(proc):
                buf = proc.alloc(1 * MiB, backed=False)
                t0 = proc.now
                yield from proc.comm.bcast(buf, 0, 1 * MiB, root=0)
                return proc.now - t0

            return max(job.run(prog).values)

        cores = timed(stacks.KNEM_COLL.with_tuning(hierarchical=False))
        dma = timed(stacks.KNEM_COLL.with_tuning(hierarchical=False,
                                                 dma_offload=True))
        assert dma > cores


class TestAllgatherComposition:
    def test_allgather_is_gather_plus_bcast(self):
        machine, _ = run_on("dancer", 8, stacks.KNEM_COLL,
                            lambda proc: _allgather_prog(proc, 256 * KiB))
        # gather: 1 write-region; bcast of the assembled buffer: 1 region
        # (linear would be 2 total; dancer is hierarchical: root + 1 leader)
        assert machine.knem.stats_registrations in (2, 3)


def _allgather_prog(proc, nbytes):
    send = proc.alloc(nbytes, backed=False)
    recv = proc.alloc(nbytes * proc.comm.size, backed=False)
    yield from proc.comm.allgather(send, recv, nbytes)


class TestScheduleAnalysis:
    """One decorator opts a collective test into full trace analysis: the
    plugin forces tracing, then fails the test on any race, cookie
    lifecycle, or direction finding (see repro.analysis.pytest_plugin)."""

    @pytest.mark.analyze_schedule
    def test_bcast_schedule_analyzed_clean(self):
        run_on("zoot", 8, stacks.KNEM_COLL, bcast_prog, 256 * KiB)

    @pytest.mark.analyze_schedule(checkers=["race", "cookie"])
    def test_gather_schedule_analyzed_clean(self):
        run_on("zoot", 8, stacks.KNEM_COLL, gather_prog, 256 * KiB)
