"""ASP application: distributed result vs oracle, timing-mode behaviour."""

import numpy as np
import pytest

from repro.apps.asp import (
    INF,
    AspConfig,
    asp_paper_config,
    floyd_warshall_reference,
    run_asp,
    run_asp_timed,
)
from repro.errors import BenchmarkError
from repro.mpi import stacks


def random_graph(n, density=0.4, seed=0):
    rng = np.random.default_rng(seed)
    adj = rng.integers(1, 100, size=(n, n)).astype(np.int32)
    adj[rng.random((n, n)) > density] = INF
    np.fill_diagonal(adj, 0)
    return adj


class TestConfig:
    def test_block_partition_covers_all_rows(self):
        cfg = AspConfig(n=100, nprocs=7)
        rows = []
        for r in range(7):
            lo, hi = cfg.block(r)
            rows.extend(range(lo, hi))
        assert rows == list(range(100))

    def test_owner_consistent_with_block(self):
        cfg = AspConfig(n=97, nprocs=6)
        for row in range(97):
            lo, hi = cfg.block(cfg.owner(row))
            assert lo <= row < hi

    def test_paper_configs(self):
        z = asp_paper_config("zoot")
        assert (z.n, z.nprocs) == (16384, 16)
        assert z.row_bytes == 64 * 1024
        i = asp_paper_config("ig")
        assert (i.n, i.nprocs) == (32768, 48)
        assert i.row_bytes == 128 * 1024
        with pytest.raises(BenchmarkError):
            asp_paper_config("dancer")

    def test_more_ranks_than_rows_rejected(self):
        with pytest.raises(BenchmarkError):
            AspConfig(n=4, nprocs=8)


class TestReferenceOracle:
    def test_against_scipy(self):
        from scipy.sparse.csgraph import floyd_warshall as scipy_fw

        adj = random_graph(24, seed=3)
        ours = floyd_warshall_reference(adj)
        dense = adj.astype(np.float64)
        dense[dense >= INF] = np.inf
        theirs = scipy_fw(dense)
        finite = theirs < np.inf
        assert (ours[finite] == theirs[finite]).all()
        assert (ours[~finite] >= INF // 2).all()


class TestDistributedCorrectness:
    @pytest.mark.parametrize("stack", [stacks.TUNED_SM, stacks.MPICH2_SM,
                                       stacks.KNEM_COLL],
                             ids=lambda s: s.name)
    def test_matches_oracle(self, stack):
        adj = random_graph(40, seed=7)
        ref = floyd_warshall_reference(adj)
        out = run_asp("dancer", stack, adj, nprocs=8)
        assert np.array_equal(out, ref)

    def test_uneven_row_distribution(self):
        adj = random_graph(37, seed=11)  # 37 rows over 5 ranks
        ref = floyd_warshall_reference(adj)
        out = run_asp("dancer", stacks.KNEM_COLL, adj, nprocs=5)
        assert np.array_equal(out, ref)

    def test_disconnected_graph(self):
        adj = np.full((16, 16), INF, dtype=np.int32)
        np.fill_diagonal(adj, 0)
        adj[0, 1] = 5
        out = run_asp("dancer", stacks.TUNED_SM, adj, nprocs=4)
        assert out[0, 1] == 5
        assert out[1, 0] >= INF // 2
        assert out[3, 12] >= INF // 2

    def test_non_square_rejected(self):
        with pytest.raises(BenchmarkError):
            run_asp("dancer", stacks.TUNED_SM,
                    np.zeros((4, 5), dtype=np.int32), nprocs=2)


class TestTimedMode:
    def test_timing_fields_consistent(self):
        cfg = AspConfig(n=1024, nprocs=8)
        t = run_asp_timed("dancer", stacks.KNEM_COLL, cfg, sample=64)
        assert t.iterations_simulated == 16
        assert t.bcast_time > 0
        assert t.compute_time > 0
        assert t.total_time >= t.bcast_time
        assert t.total_time >= t.compute_time

    def test_sampling_extrapolates_total(self):
        """Coarser sampling must give approximately the same totals."""
        cfg = AspConfig(n=2048, nprocs=8)
        fine = run_asp_timed("dancer", stacks.KNEM_COLL, cfg, sample=32)
        coarse = run_asp_timed("dancer", stacks.KNEM_COLL, cfg, sample=128)
        assert coarse.total_time == pytest.approx(fine.total_time, rel=0.1)

    def test_compute_time_matches_calibration(self):
        cfg = AspConfig(n=1024, nprocs=8)
        t = run_asp_timed("dancer", stacks.KNEM_COLL, cfg, sample=64)
        from repro.hardware.machines import dancer
        per_iter = (1024 // 8) * 1024 * dancer().core.elem_op_time
        assert t.compute_time == pytest.approx(1024 * per_iter, rel=0.01)

    def test_knem_bcast_cheaper_than_sm_in_app(self):
        # 32 KB rows: Table-I-like sizes, above the KNEM switch-point.
        cfg = AspConfig(n=8192, nprocs=16)
        knem = run_asp_timed("zoot", stacks.KNEM_COLL, cfg, sample=256)
        sm = run_asp_timed("zoot", stacks.TUNED_SM, cfg, sample=256)
        assert knem.bcast_time < sm.bcast_time

    def test_bad_sample_rejected(self):
        with pytest.raises(BenchmarkError):
            run_asp_timed("dancer", stacks.KNEM_COLL,
                          AspConfig(n=64, nprocs=4), sample=0)
