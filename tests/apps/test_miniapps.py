"""Stencil and transpose mini-apps: distributed results vs oracles."""

import numpy as np
import pytest

from repro.apps.stencil import StencilConfig, jacobi_reference, run_stencil
from repro.apps.transpose import TransposeConfig, alltoall_time, run_transpose
from repro.errors import BenchmarkError
from repro.mpi import stacks


class TestStencil:
    @pytest.mark.parametrize("stack", [stacks.TUNED_SM, stacks.KNEM_COLL],
                             ids=lambda s: s.name)
    def test_matches_reference(self, stack):
        rng = np.random.default_rng(5)
        grid = rng.random((34, 20))
        cfg = StencilConfig(rows=34, cols=20, iterations=4)
        out, elapsed = run_stencil("dancer", stack, cfg, grid, nprocs=8)
        ref = jacobi_reference(grid, 4)
        assert out.shape == ref.shape
        assert np.allclose(out, ref)
        assert elapsed > 0

    def test_uneven_strips(self):
        rng = np.random.default_rng(6)
        grid = rng.random((23, 16))
        cfg = StencilConfig(rows=23, cols=16, iterations=3)
        out, _ = run_stencil("dancer", stacks.TUNED_SM, cfg, grid, nprocs=5)
        assert np.allclose(out, jacobi_reference(grid, 3))

    def test_single_rank(self):
        grid = np.arange(8 * 8, dtype=float).reshape(8, 8)
        cfg = StencilConfig(rows=8, cols=8, iterations=2)
        out, _ = run_stencil("dancer", stacks.TUNED_SM, cfg, grid, nprocs=1)
        assert np.allclose(out, jacobi_reference(grid, 2))

    def test_too_many_ranks_rejected(self):
        cfg = StencilConfig(rows=6, cols=6, iterations=1)
        with pytest.raises(BenchmarkError):
            run_stencil("dancer", stacks.TUNED_SM, cfg,
                        np.zeros((6, 6)), nprocs=8)

    def test_grid_too_small_rejected(self):
        with pytest.raises(BenchmarkError):
            StencilConfig(rows=2, cols=8, iterations=1)


class TestTranspose:
    @pytest.mark.parametrize("stack", [stacks.TUNED_SM, stacks.KNEM_COLL],
                             ids=lambda s: s.name)
    def test_matches_numpy_transpose(self, stack):
        rng = np.random.default_rng(9)
        mat = rng.random((32, 32))
        out, elapsed = run_transpose("dancer", stack, mat, nprocs=8)
        assert np.allclose(out, mat.T)
        assert elapsed > 0

    def test_single_rank(self):
        mat = np.arange(16.0).reshape(4, 4)
        out, _ = run_transpose("dancer", stacks.TUNED_SM, mat, nprocs=1)
        assert np.allclose(out, mat.T)

    def test_indivisible_rejected(self):
        with pytest.raises(BenchmarkError):
            TransposeConfig(n=10, nprocs=3)

    def test_alltoall_time_positive_and_size_monotone(self):
        small = alltoall_time("dancer", stacks.KNEM_COLL,
                              TransposeConfig(n=256, nprocs=8))
        large = alltoall_time("dancer", stacks.KNEM_COLL,
                              TransposeConfig(n=1024, nprocs=8))
        assert 0 < small < large
