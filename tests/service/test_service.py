"""Service-level equivalence: served sweeps ARE local sweeps, byte for byte.

The acceptance suite for the sweep service: serial, warm-pool-parallel,
and served runs of one grid must produce byte-identical CSVs; a repeat
sweep against a warm server must be answered entirely from the
content-addressed cache without touching the compute path; two
concurrent clients with overlapping grids must cost exactly one
simulation per unique cell; and a durable cache must survive a server
restart.
"""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro.bench.harness import run_sweep
from repro.bench.imb import ImbSettings
from repro.errors import BenchmarkError
from repro.mpi import stacks
from repro.service.client import ServiceClient
from repro.service.server import start_in_thread
from repro.units import KiB

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="warm-pool paths need the fork start method")

SETTINGS = ImbSettings(max_iterations=1, warmups=0)
GRID = dict(
    machine="dancer", operation="bcast", nprocs=4,
    stacks=[stacks.TUNED_SM, stacks.KNEM_COLL],
    sizes=[32 * KiB, 128 * KiB], settings=SETTINGS)
N_CELLS = 4


def sweep(experiment="svc", **overrides):
    return run_sweep(experiment=experiment, **{**GRID, **overrides})


def times(result):
    return {s.name: dict(s.times) for s in result.series}


@pytest.fixture(scope="module")
def serial():
    return sweep()


class TestEquivalence:
    def test_served_equals_serial_byte_identical_csv(self, serial, tmp_path):
        with start_in_thread(jobs=1) as handle:
            served = sweep(service=handle.address)
        assert times(served) == times(serial)
        a = serial.to_csv(str(tmp_path / "serial.csv"))
        b = served.to_csv(str(tmp_path / "served.csv"))
        assert open(a, "rb").read() == open(b, "rb").read()
        assert served.stats.service_cells == N_CELLS
        assert served.stats.service_cache_hits == 0  # cold server

    @needs_fork
    def test_serial_parallel_served_all_identical(self, serial, tmp_path):
        parallel = sweep(parallel=2)
        with start_in_thread(jobs=2) as handle:
            served = sweep(service=handle.address)
        assert times(parallel) == times(serial)
        assert times(served) == times(serial)
        paths = [r.to_csv(str(tmp_path / f"{n}.csv"))
                 for n, r in (("serial", serial), ("parallel", parallel),
                              ("served", served))]
        blobs = {open(p, "rb").read() for p in paths}
        assert len(blobs) == 1

    def test_repeat_sweep_is_all_cache_hits_without_computing(self, serial):
        with start_in_thread(jobs=1) as handle:
            first = sweep(service=handle.address)
            computed = handle.counters()["cells_computed"]
            batches = handle.counters()["pool_batches"]
            again = sweep(service=handle.address)
            after = handle.counters()
        assert times(first) == times(serial)
        assert times(again) == times(serial)
        assert computed == N_CELLS
        # The repeat touched neither the runner nor the pool: same compute
        # and batch counters, and every cell arrived flagged as cached.
        assert after["cells_computed"] == computed
        assert after["pool_batches"] == batches
        assert after["cache_hits"] == N_CELLS
        assert again.stats.service_cache_hits == N_CELLS

    def test_concurrent_clients_overlap_costs_one_simulation_per_cell(
            self, serial):
        # Client A sweeps {32K, 64K}, client B {64K, 128K}: the 64K column
        # overlaps.  Whichever client gets there second must be answered
        # from the cache or by attaching to the in-flight computation —
        # never by a second simulation of the same cell.
        grids = ([32 * KiB, 64 * KiB], [64 * KiB, 128 * KiB])
        unique = 3 * len(GRID["stacks"])
        total = 4 * len(GRID["stacks"])
        results: dict[int, object] = {}

        with start_in_thread(jobs=1) as handle:
            def client(idx, sizes):
                results[idx] = sweep(service=handle.address, sizes=sizes)

            threads = [threading.Thread(target=client, args=(i, g))
                       for i, g in enumerate(grids)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            counters = handle.counters()

        assert len(results) == 2
        for idx, sizes in enumerate(grids):
            local = sweep(sizes=sizes)
            assert times(results[idx]) == times(local)
        assert counters["cells_computed"] == unique
        assert counters["cells_served"] == total
        assert (counters["cache_hits"] + counters["dedup_hits"]
                == total - unique)

    def test_restart_persists_the_durable_cache(self, serial, tmp_path):
        cache = str(tmp_path / "cache.checkpoint.json")
        with start_in_thread(jobs=1, cache_path=cache) as handle:
            warm = sweep(service=handle.address)
        # Server gone; a fresh one on the same journal starts warm.
        with start_in_thread(jobs=1, cache_path=cache) as handle:
            revived = sweep(service=handle.address)
            counters = handle.counters()
        assert times(warm) == times(serial)
        assert times(revived) == times(serial)
        assert counters["cells_computed"] == 0
        assert revived.stats.service_cache_hits == N_CELLS
        assert counters["store"]["entries"] == N_CELLS


class TestTransport:
    def test_ping_reports_counters(self):
        with start_in_thread(jobs=1) as handle:
            with ServiceClient(handle.address) as client:
                counters = client.ping()
        assert counters["requests"] == 0
        assert "store" in counters

    def test_unix_socket_transport(self, serial, tmp_path):
        sock = str(tmp_path / "sweep.sock")
        with start_in_thread(sock, jobs=1) as handle:
            assert handle.address == sock
            served = sweep(service=sock)
        assert times(served) == times(serial)

    def test_server_side_cell_error_raises_typed_client_side(self):
        with start_in_thread(jobs=1) as handle:
            with pytest.raises(BenchmarkError, match="unknown machine"):
                sweep(service=handle.address, machine="nehalem")

    def test_service_events_feed_the_trace_model(self, serial):
        from repro.analysis.model import TraceModel

        with start_in_thread(jobs=1) as handle:
            sweep(service=handle.address)           # populate the cache
            again = sweep(service=handle.address)   # all cache hits
        model = TraceModel(nprocs=1).ingest(again.stats.events)
        kinds = [ev.kind for ev in model.service_events]
        assert kinds.count("request") == 1
        assert kinds.count("cache_hit") == N_CELLS
        hit = next(ev for ev in model.service_events
                   if ev.kind == "cache_hit")
        assert hit.cell in {f"{s.name}|{size}" for s in GRID["stacks"]
                            for size in GRID["sizes"]}

    def test_connecting_to_a_dead_server_raises_typed(self, serial):
        with start_in_thread(jobs=1) as handle:
            address = handle.address
        with pytest.raises((BenchmarkError, OSError)):
            sweep(service=address)
