"""Wire codec, cache-key derivation, and the result store."""

from __future__ import annotations

import io

import pytest

from repro.bench.harness import verify_journal
from repro.bench.imb import CellStats, ImbSettings
from repro.errors import BenchmarkError
from repro.faults.plan import FaultPlan, FaultRule
from repro.mpi import stacks
from repro.service import protocol
from repro.service.store import ResultStore


PLAN = FaultPlan([FaultRule(op="copy", probability=0.5, sticky=True)],
                 seed=99)
SETTINGS = ImbSettings(max_iterations=3, warmups=1, fault_plan=PLAN)


class TestRoundTrips:
    def test_stack_round_trips_with_tuning(self):
        for stack in (stacks.TUNED_SM, stacks.KNEM_COLL):
            again = protocol.decode_stack(protocol.encode_stack(stack))
            assert again == stack

    def test_settings_round_trip_includes_fault_plan(self):
        again = protocol.decode_settings(protocol.encode_settings(SETTINGS))
        assert again.max_iterations == SETTINGS.max_iterations
        assert again.warmups == SETTINGS.warmups
        assert again.fault_plan is not None
        assert again.fault_plan.seed == PLAN.seed
        assert again.fault_plan.rules == PLAN.rules

    def test_settings_round_trip_without_fault_plan(self):
        plain = ImbSettings(max_iterations=1, warmups=0)
        again = protocol.decode_settings(protocol.encode_settings(plain))
        assert again.fault_plan is None

    def test_stats_round_trip_and_none(self):
        stats = CellStats(sim_events=10, process_resumes=2, peak_heap=512,
                          knem_degrades=1)
        assert protocol.decode_stats(protocol.encode_stats(stats)) == stats
        assert protocol.encode_stats(None) is None
        assert protocol.decode_stats(None) is None

    def test_malformed_payloads_raise_typed(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_stack({"name": "half-a-stack"})
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_settings({"warmups": 0})
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_stats({"not_a_field": 1})


class TestCacheKey:
    CTX = ("dancer", "bcast", 4, SETTINGS)

    def key(self, stack=stacks.TUNED_SM, size=4096, ctx=None):
        machine, op, nprocs, settings = ctx or self.CTX
        return protocol.cache_key(machine, op, nprocs, settings, stack, size)

    def test_deterministic(self):
        assert self.key() == self.key()
        assert len(self.key()) == 32  # blake2b-128 hex

    def test_every_input_is_part_of_the_identity(self):
        base = self.key()
        assert self.key(size=8192) != base
        assert self.key(stack=stacks.KNEM_COLL) != base
        assert self.key(ctx=("zoot", "bcast", 4, SETTINGS)) != base
        assert self.key(ctx=("dancer", "gather", 4, SETTINGS)) != base
        assert self.key(ctx=("dancer", "bcast", 8, SETTINGS)) != base
        other = ImbSettings(max_iterations=3, warmups=1,
                            fault_plan=FaultPlan(PLAN.rules, seed=100))
        assert self.key(ctx=("dancer", "bcast", 4, other)) != base

    def test_fingerprint_is_canonical(self):
        a = protocol.context_fingerprint(*self.CTX)
        b = protocol.context_fingerprint(*self.CTX)
        assert a == b


class TestAddressAndFrames:
    def test_tcp_addresses(self):
        assert protocol.parse_address("127.0.0.1:7000") == \
            ("tcp", "127.0.0.1", 7000)
        assert protocol.parse_address(":0") == ("tcp", "127.0.0.1", 0)

    def test_unix_addresses(self):
        assert protocol.parse_address("/tmp/x/sweep.sock") == \
            ("unix", "/tmp/x/sweep.sock")
        assert protocol.parse_address("sweep.sock") == ("unix", "sweep.sock")

    def test_bad_address_raises_typed(self):
        with pytest.raises(BenchmarkError):
            protocol.parse_address("nonsense")

    def test_frame_round_trip(self):
        frame = {"op": "ping", "id": 3}
        line = protocol.format_frame(frame)
        assert line.endswith(b"\n")
        assert protocol.parse_frame(line) == frame

    def test_bad_frames_raise_typed(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_frame(b"not json\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_frame(b'{"no": "op"}\n')

    def test_read_frames_skips_blank_lines(self):
        raw = (protocol.format_frame({"op": "a"}) + b"\n" +
               protocol.format_frame({"op": "b"}))
        ops = [f["op"] for f in protocol.read_frames(io.BytesIO(raw))]
        assert ops == ["a", "b"]


class TestResultStore:
    def test_memory_only(self):
        with ResultStore() as store:
            assert store.get("k") is None
            store.put("k", 1.5)
            assert store.get("k") == 1.5
            assert store.counters()["hits"] == 1
            assert store.counters()["misses"] == 1
            assert store.counters()["durable"] is True  # nothing to lose

    def test_durable_across_reopen(self, tmp_path):
        path = str(tmp_path / "cache.checkpoint.json")
        with ResultStore(path) as store:
            store.put("aa", 0.25)
            store.put("bb", 0.5)
        with ResultStore(path) as store:
            assert len(store) == 2
            assert store.get("aa") == 0.25
            assert store.counters()["durable"] is True

    def test_corrupt_record_is_a_cache_miss_not_an_error(self, tmp_path):
        path = str(tmp_path / "cache.checkpoint.json")
        with ResultStore(path) as store:
            store.put("aa", 0.25)
            store.put("bb", 0.5)
            store.put("cc", 0.75)
        raw = open(path).read().splitlines()
        raw[2] = raw[2].replace('"t"', '"x"')  # interior record, corrupted
        open(path, "w").write("\n".join(raw) + "\n")
        with ResultStore(path) as store:
            assert store.recovered_dropped == 1
            assert len(store) == 2
        # ... and the compaction rewrite healed the journal on disk.
        assert verify_journal(path).ok

    def test_second_store_on_one_path_is_refused(self, tmp_path):
        path = str(tmp_path / "cache.checkpoint.json")
        with ResultStore(path):
            with pytest.raises(BenchmarkError, match="locked"):
                ResultStore(path)

    def test_foreign_journal_is_refused(self, tmp_path):
        path = str(tmp_path / "sweep.checkpoint.json")
        with open(path, "w") as fh:
            fh.write('{"format": 3, "header": {"experiment": "fig5"}}\n')
        with pytest.raises(BenchmarkError, match="not a service cache"):
            ResultStore(path)
