"""Unit helpers and the tracer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simtime.trace import Tracer
from repro.units import (
    KiB,
    MiB,
    fmt_bandwidth,
    fmt_size,
    fmt_time,
    gbps,
    parse_size,
)


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("64K", 64 * KiB), ("1M", MiB), ("8M", 8 * MiB), ("512", 512),
        ("2KiB", 2 * KiB), ("1.5K", 1536), ("4kb", 4 * KiB), (4096, 4096),
    ])
    def test_examples(self, text, expected):
        assert parse_size(text) == expected

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_size("lots")

    @given(n=st.integers(min_value=0, max_value=1 << 40))
    def test_fmt_parse_roundtrip(self, n):
        assert parse_size(fmt_size(n)) == n


class TestFormatting:
    def test_fmt_size_paper_axis_labels(self):
        assert fmt_size(32 * KiB) == "32K"
        assert fmt_size(8 * MiB) == "8M"
        assert fmt_size(1000) == "1000"

    def test_fmt_time_units(self):
        assert fmt_time(0) == "0s"
        assert "ns" in fmt_time(5e-9)
        assert "us" in fmt_time(3.2e-6)
        assert "ms" in fmt_time(4e-3)
        assert fmt_time(2.0) == "2.000s"

    def test_bandwidth(self):
        assert fmt_bandwidth(gbps(2.5)) == "2.50GB/s"
        assert gbps(1.0) == 1e9


class TestTracer:
    def test_counters_always_on(self):
        t = Tracer()
        t.emit("copy", nbytes=4)
        t.emit("copy", nbytes=8)
        assert t.count("copy") == 2
        assert t.records == []  # disabled: no record bodies

    def test_records_when_enabled(self):
        clock = iter([1.0, 2.0])
        t = Tracer(clock=lambda: next(clock), enabled=True)
        t.emit("a", x=1)
        t.emit("b", x=2)
        assert [r.time for r in t.records] == [1.0, 2.0]
        assert list(t.select("a"))[0].x == 1

    def test_record_attr_error(self):
        t = Tracer(enabled=True)
        t.emit("a", x=1)
        rec = t.records[0]
        with pytest.raises(AttributeError):
            _ = rec.missing

    def test_reset(self):
        t = Tracer(enabled=True)
        t.emit("a")
        t.reset()
        assert t.count("a") == 0 and not t.records
