"""Sweep runner, normalization, rendering, CSV output, CLI plumbing."""

import csv
import os

import pytest

from repro.bench.harness import ExperimentResult, Series, run_sweep
from repro.bench.imb import ImbSettings
from repro.bench.report import render_registration_ablation, render_table1
from repro.errors import BenchmarkError
from repro.mpi import stacks
from repro.units import KiB


@pytest.fixture
def tiny_sweep(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return run_sweep(
        experiment="unit",
        machine="dancer",
        operation="bcast",
        nprocs=4,
        stacks=[stacks.TUNED_SM, stacks.KNEM_COLL],
        sizes=[32 * KiB, 128 * KiB],
        settings=ImbSettings(max_iterations=1, warmups=0),
        reference="KNEM-Coll",
    )


class TestSweep:
    def test_series_cover_grid(self, tiny_sweep):
        assert [s.name for s in tiny_sweep.series] == ["Tuned-SM", "KNEM-Coll"]
        assert tiny_sweep.sizes == [32 * KiB, 128 * KiB]
        for s in tiny_sweep.series:
            assert all(t > 0 for t in s.times.values())

    def test_reference_normalizes_to_one(self, tiny_sweep):
        norm = tiny_sweep.normalized()
        for size, v in norm["KNEM-Coll"].items():
            assert v == pytest.approx(1.0)

    def test_render_contains_rows(self, tiny_sweep):
        text = tiny_sweep.render()
        assert "32K" in text and "128K" in text
        assert "Tuned-SM" in text
        assert "normalized to KNEM-Coll" in text

    def test_render_absolute(self, tiny_sweep):
        text = tiny_sweep.render(normalized=False)
        assert "per-op time" in text

    def test_csv_round_trip(self, tiny_sweep):
        path = tiny_sweep.to_csv()
        assert os.path.exists(path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 4
        assert {r["series"] for r in rows} == {"Tuned-SM", "KNEM-Coll"}
        for r in rows:
            assert float(r["seconds"]) > 0

    def test_get_unknown_series_rejected(self, tiny_sweep):
        with pytest.raises(BenchmarkError):
            tiny_sweep.get("nope")

    def test_empty_sweep_rejected(self):
        with pytest.raises(BenchmarkError):
            run_sweep("x", "dancer", "bcast", 2, [], [1024])


class TestReports:
    def test_table1_render_includes_improvement(self):
        rows = {
            "Open MPI": {"bcast": 10.0, "total": 100.0},
            "MPICH2": {"bcast": 5.0, "total": 95.0},
            "KNEM Coll": {"bcast": 1.0, "total": 91.0},
        }
        text = render_table1("zoot", rows, paper={"Open MPI": (405.7, 2891.2)})
        assert "Improvement" in text
        assert "80.0%" in text  # (5 - 1) / 5
        assert "405.7" in text

    def test_registration_render(self):
        text = render_registration_ablation({
            "KNEM-Coll": {"registrations": 2, "kernel_copies": 10},
            "Tuned-KNEM": {"registrations": 14, "kernel_copies": 14},
        })
        assert "KNEM-Coll" in text and "14" in text


class TestCli:
    def test_cli_smoke(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        from repro.bench.cli import main

        rc = main(["abl-direction", "--machine", "zoot", "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "abl-direction" in out

    def test_cli_rejects_unknown(self):
        from repro.bench.cli import main

        with pytest.raises(SystemExit):
            main(["not-an-experiment"])


class TestNormalization:
    def test_missing_reference_size_is_skipped(self):
        s = Series("a", {1024: 2.0, 2048: 4.0})
        ref = Series("ref", {1024: 1.0})  # no 2048 measurement
        assert s.normalized_to(ref) == {1024: 2.0}

    def test_zero_reference_time_raises(self):
        # A reference cell of exactly 0.0 is a measurement bug, not a size
        # to silently drop (the old `if rt:` truthiness test conflated the
        # two).
        s = Series("a", {1024: 2.0})
        ref = Series("ref", {1024: 0.0})
        with pytest.raises(BenchmarkError, match="measured 0 s"):
            s.normalized_to(ref)

    def test_zero_numerator_over_nonzero_reference_is_fine(self):
        s = Series("a", {1024: 0.0})
        ref = Series("ref", {1024: 2.0})
        assert s.normalized_to(ref) == {1024: 0.0}
