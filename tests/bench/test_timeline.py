"""Trace-timeline utility."""

from repro.bench.timeline import copy_stats, extract_copies, render_timeline
from repro.mpi import Job, Machine, stacks
from repro.units import KiB


def traced_bcast():
    machine = Machine.build("dancer", trace=True)
    job = Job(machine, nprocs=4, stack=stacks.KNEM_COLL)

    def prog(proc):
        buf = proc.alloc(64 * KiB, backed=False)
        yield from proc.comm.bcast(buf, 0, 64 * KiB, root=0)

    job.run(prog)
    return machine


def test_extract_orders_by_time():
    machine = traced_bcast()
    spans = extract_copies(machine.tracer)
    assert spans
    times = [s.time for s in spans]
    assert times == sorted(times)
    assert all(s.nbytes > 0 for s in spans)


def test_render_contains_copies_and_cores():
    machine = traced_bcast()
    text = render_timeline(machine.tracer)
    assert "copies over" in text
    assert "knem" in text
    assert "core" in text


def test_render_without_trace_is_graceful():
    machine = Machine.build("dancer")  # tracing off
    assert "no copy records" in render_timeline(machine.tracer)


def test_copy_stats_aggregates():
    machine = traced_bcast()
    stats = copy_stats(machine.tracer)
    assert "knem" in stats["by_kind"]
    total = sum(v["copies"] for v in stats["by_kind"].values())
    assert total == len(extract_copies(machine.tracer))
