"""Experiment definitions: smoke runs and structural checks."""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    FIG4_SIZES,
    FIG_SIZES,
    MACHINE_RANKS,
    PAPER_EXPECTATIONS,
    ablation_registration,
    figure4,
    figure5,
    table1,
)
from repro.errors import BenchmarkError
from repro.units import KiB, MiB


class TestGrids:
    def test_paper_size_grid(self):
        assert FIG_SIZES[0] == 32 * KiB
        assert FIG_SIZES[-1] == 8 * MiB
        assert len(FIG_SIZES) == 9  # the 9 points of Figures 5-8
        assert FIG4_SIZES[0] == 512 * KiB

    def test_ranks_match_paper(self):
        assert MACHINE_RANKS == {"zoot": 16, "dancer": 8, "saturn": 16,
                                 "ig": 48}

    def test_expectations_cover_all_machines(self):
        for key in ("fig5", "fig6", "scatter", "fig7"):
            assert set(PAPER_EXPECTATIONS[key]) == set(MACHINE_RANKS)

    def test_registry_entries_callable(self):
        for name, (fn, takes_machine) in EXPERIMENTS.items():
            assert callable(fn), name


class TestSmokeRuns:
    def test_fig5_smoke_dancer(self):
        result = figure5("dancer", scale="smoke")
        assert result.nprocs == 8
        assert len(result.sizes) == 2
        norm = result.normalized()
        assert set(norm) == {"Tuned-SM", "Tuned-KNEM", "MPICH2-SM",
                             "MPICH2-KNEM", "KNEM-Coll"}

    def test_fig4_smoke(self):
        result = figure4(scale="smoke", pipeline_sizes=[16 * KiB])
        names = [s.name for s in result.series]
        assert names == ["linear", "no-pipeline", "pipe-16K"]
        assert result.reference == "no-pipeline"
        norm = result.normalized()
        for size in result.sizes:
            assert norm["linear"][size] > 1.5

    def test_table1_smoke(self):
        rows = table1("zoot", scale="smoke")
        assert set(rows) == {"Open MPI", "MPICH2", "KNEM Coll"}
        for cols in rows.values():
            assert cols["total"] > cols["bcast"] > 0

    def test_table1_rejects_other_machines(self):
        with pytest.raises(BenchmarkError):
            table1("dancer", scale="smoke")

    def test_bad_scale_rejected(self):
        with pytest.raises(BenchmarkError):
            figure5("dancer", scale="gigantic")

    def test_registration_ablation_shape(self):
        stats = ablation_registration("dancer")
        assert set(stats) == {"KNEM-Coll", "Tuned-KNEM"}
        knem = stats["KNEM-Coll"]
        assert knem["registrations"] < knem["kernel_copies"]
