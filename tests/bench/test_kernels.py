"""Generated-kernel machinery: generation, the differential battery,
receipts staleness, and the activate/fallback ladder.

The perf claims live in ``BENCH_kernels.json`` (recorded by ``--tune``);
what these tests pin is the *safety* story around them: a generated
variant is only ever installed after the bitwise battery passes, receipts
from another host/version silently fall back to the builtins, and
deactivation restores the untuned engine exactly.
"""

from __future__ import annotations

import json

import pytest

from repro import vector
from repro.bench import kernels as K
from repro.hardware import flows as _flows
from repro.simtime import core as _core


@pytest.fixture(autouse=True)
def _clean_kernels():
    yield
    K.deactivate()


def write_receipts(path, **overrides) -> str:
    receipts = {
        "version": K.RECEIPTS_VERSION,
        "generated_at": "2026-01-01T00:00:00Z",
        "quick": True,
        "host": K.host_fingerprint(),
        "default": {"dispatch": "dx_generic", "waterfill": "wf_generic"},
        "measured": {},
        "machines": {
            "dancer": {"n_res": 3, "dispatch": "dx_drain",
                       "waterfill": "wf_scalarized", "measured": {}},
        },
        "rejected": [],
    }
    receipts.update(overrides)
    path.write_text(json.dumps(receipts))
    return str(path)


class TestGeneration:
    def test_drain_specialization_deletes_both_horizon_guards(self):
        src = K._specialize_drain("dx_test", horizon_known=False)
        assert "horizon is not None" not in src
        assert src.startswith("def dx_test(self, horizon=None):")

    def test_drain_specialization_folds_guards_when_horizon_known(self):
        src = K._specialize_drain("dx_test", horizon_known=True)
        assert "horizon is not None" not in src
        assert src.count("> horizon") == 2

    def test_source_drift_raises_generation_error(self, monkeypatch):
        # A refactor of _run_cohort that changes the guard shape must be
        # loud, not silently produce a wrong kernel.
        monkeypatch.setattr(K, "_builtin_drain_source",
                            lambda: ["def _run_cohort(self, horizon):",
                                     "    pass"])
        with pytest.raises(K.KernelGenerationError):
            K._specialize_drain("dx_test", horizon_known=False)

    def test_every_variant_carries_its_generated_source(self):
        for name in K.DISPATCH_VARIANTS:
            kernel = K.make_dispatch_kernel(name)
            if kernel is not None:  # the builtin maps to None
                assert f"def {name}" in kernel.generated_source

    def test_wf_nres_names_parse_and_unknown_names_do_not(self):
        assert K._known_waterfill("wf_nres7")
        assert K._known_waterfill("wf_generic")
        assert not K._known_waterfill("wf_bogus")
        assert not K._known_waterfill("wf_nres")


class TestBattery:
    @pytest.mark.parametrize("name", sorted(K.DISPATCH_VARIANTS))
    def test_dispatch_variants_bitwise_identical(self, name):
        K.verify_dispatch_variant(name, seeds=(1,))

    @pytest.mark.parametrize("name",
                             ["wf_generic", "wf_scalarized", "wf_fused_r1",
                              "wf_nres3"])
    def test_waterfill_variants_bitwise_identical(self, name):
        K.verify_waterfill_variant(name, n_res_set=(1, 3), seeds=(11,))

    def test_broken_kernel_fails_the_battery(self, monkeypatch):
        # Sabotage a generated waterfill: the battery must catch it.
        real = K.make_waterfill_kernel

        def sabotaged(name):
            kernel = real(name)
            if kernel is None:
                return None

            def wrong(net, ordered):
                result = kernel(net, ordered)
                for flow in ordered:
                    flow.rate *= 1.0000001
                return result

            return wrong

        monkeypatch.setattr(K, "make_waterfill_kernel", sabotaged)
        with pytest.raises(K.KernelVerificationError):
            K.verify_waterfill_variant("wf_scalarized",
                                       n_res_set=(3,), seeds=(11,))


class TestReceipts:
    def test_fresh_receipts_pass_staleness(self, tmp_path):
        path = write_receipts(tmp_path / "r.json")
        assert K._staleness(K.load_receipts(path)) is None

    def test_version_bump_is_stale(self, tmp_path):
        path = write_receipts(tmp_path / "r.json",
                              version=K.RECEIPTS_VERSION + 1)
        assert "version" in K._staleness(K.load_receipts(path))

    def test_other_host_is_stale(self, tmp_path):
        host = dict(K.host_fingerprint(), python="2.7.18")
        path = write_receipts(tmp_path / "r.json", host=host)
        assert "host fingerprint" in K._staleness(K.load_receipts(path))

    def test_missing_or_corrupt_file_loads_as_none(self, tmp_path):
        assert K.load_receipts(str(tmp_path / "absent.json")) is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert K.load_receipts(str(bad)) is None

    def test_env_var_points_the_default_path(self, tmp_path, monkeypatch):
        path = write_receipts(tmp_path / "env.json")
        monkeypatch.setenv(K.ENV_RECEIPTS, path)
        assert K.load_receipts() is not None
        assert K._receipts_path() == tmp_path / "env.json"


class TestActivate:
    def test_activate_installs_recorded_winners(self, tmp_path):
        path = write_receipts(tmp_path / "r.json")
        with vector.forced(True):
            summary = K.activate(machine="dancer", path=path)
        assert summary["active"] is True
        assert summary["dispatch"] == "dx_drain"
        assert summary["waterfill"] == "wf_scalarized"
        assert _core._DISPATCH_KERNEL is not None
        assert _flows._WATERFILL_KERNEL is not None
        K.deactivate()
        assert _core._DISPATCH_KERNEL is None
        assert _flows._WATERFILL_KERNEL is None

    def test_unknown_machine_falls_back_to_default_entry(self, tmp_path):
        path = write_receipts(tmp_path / "r.json")
        with vector.forced(True):
            summary = K.activate(machine="not-a-machine", path=path)
        assert summary["active"] is True
        assert summary["dispatch"] == "dx_generic"
        assert summary["waterfill"] == "wf_generic"

    def test_vector_disabled_keeps_builtins(self, tmp_path):
        path = write_receipts(tmp_path / "r.json")
        with vector.forced(False):
            summary = K.activate(machine="dancer", path=path)
        assert summary["active"] is False
        assert summary["reason"] == "REPRO_VECTOR disabled"
        assert _core._DISPATCH_KERNEL is None

    def test_stale_receipts_keep_builtins(self, tmp_path):
        path = write_receipts(tmp_path / "r.json",
                              version=K.RECEIPTS_VERSION + 1)
        with vector.forced(True):
            summary = K.activate(machine="dancer", path=path)
        assert summary["active"] is False
        assert "version" in summary["reason"]
        assert _core._DISPATCH_KERNEL is None

    def test_unknown_variant_in_receipts_keeps_builtins(self, tmp_path):
        path = write_receipts(
            tmp_path / "r.json",
            default={"dispatch": "dx_borrowed", "waterfill": "wf_generic"})
        with vector.forced(True):
            summary = K.activate(path=path)
        assert summary["active"] is False
        assert "unknown variant" in summary["reason"]


class TestWinnerSelection:
    def test_hysteresis_keeps_the_builtin_on_a_thin_win(self):
        measured = {"dx_generic": 100.0,
                    "dx_drain": 100.0 * K.WIN_MARGIN * 0.99}
        assert K._pick_winner(measured, "dx_generic") == "dx_generic"

    def test_decisive_win_takes_the_variant(self):
        measured = {"dx_generic": 100.0,
                    "dx_drain": 100.0 * K.WIN_MARGIN * 1.01}
        assert K._pick_winner(measured, "dx_generic") == "dx_drain"

    def test_machine_n_res_matches_paper_topologies(self):
        assert K.machine_n_res("zoot") == 1
        assert K.machine_n_res("dancer") == 3
        assert K.machine_n_res("saturn") == 3
        assert K.machine_n_res("ig") == 22
