"""IMB harness semantics: iteration scaling, off-cache, op registry."""

import pytest

from repro.bench.imb import OPS, ImbSettings, imb_time, iterations_for
from repro.errors import BenchmarkError
from repro.mpi import stacks
from repro.units import KiB, MiB


class TestIterations:
    def test_small_messages_iterate_more(self):
        s = ImbSettings(max_iterations=100, target_bytes=1 * MiB)
        assert iterations_for(1 * KiB, s) == 100
        assert iterations_for(256 * KiB, s) == 4
        assert iterations_for(4 * MiB, s) == 1

    def test_explicit_override(self):
        t1 = imb_time("dancer", stacks.TUNED_SM, 4, "bcast", 64 * KiB,
                      ImbSettings(warmups=0), iterations=1)
        t2 = imb_time("dancer", stacks.TUNED_SM, 4, "bcast", 64 * KiB,
                      ImbSettings(warmups=0), iterations=3)
        # per-op time stable across iteration counts (off-cache steady state)
        assert t2 == pytest.approx(t1, rel=0.15)


class TestOps:
    @pytest.mark.parametrize("op", sorted(OPS))
    def test_each_op_runs(self, op):
        t = imb_time("dancer", stacks.KNEM_COLL, 4, op, 64 * KiB,
                     ImbSettings(max_iterations=1, warmups=0))
        assert t > 0

    def test_unknown_op_rejected(self):
        with pytest.raises(BenchmarkError):
            imb_time("dancer", stacks.TUNED_SM, 4, "allreduce", 1024)


class TestOffCache:
    def test_off_cache_slower_than_warm(self):
        cold = imb_time("dancer", stacks.KNEM_COLL, 8, "bcast", 512 * KiB,
                        ImbSettings(max_iterations=4, off_cache=True))
        warm = imb_time("dancer", stacks.KNEM_COLL, 8, "bcast", 512 * KiB,
                        ImbSettings(max_iterations=4, off_cache=False))
        assert warm < cold

    def test_time_grows_with_message_size(self):
        s = ImbSettings(max_iterations=1, warmups=0)
        t1 = imb_time("zoot", stacks.TUNED_SM, 16, "bcast", 64 * KiB, s)
        t2 = imb_time("zoot", stacks.TUNED_SM, 16, "bcast", 1 * MiB, s)
        assert t2 > 5 * t1
