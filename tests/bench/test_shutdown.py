"""SIGTERM mid-sweep: clean pool teardown, reaped workers, sane journal.

The shutdown-audit regression test: a parallel sweep killed by SIGTERM
must convert the signal into ``KeyboardInterrupt`` (so ``finally``
blocks run), shut the warm pool down, reap every forked worker, and
leave the checkpoint journal on a complete record so ``--resume`` can
finish the grid.  Pre-audit behaviour was an abrupt exit that orphaned
workers and could tear the journal mid-append.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.bench.harness import verify_journal

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="the warm pool needs the fork start method")

#: a grid big enough that SIGTERM reliably lands mid-sweep (24 cells)
CHILD = textwrap.dedent("""
    import os, sys
    from repro.bench.harness import run_sweep
    from repro.bench.imb import ImbSettings
    from repro.mpi import stacks

    checkpoint = sys.argv[1]
    try:
        run_sweep(
            experiment="sigterm", machine="dancer", operation="bcast",
            nprocs=4, stacks=[stacks.TUNED_SM, stacks.KNEM_COLL],
            sizes=[2 ** k for k in range(8, 20)],
            settings=ImbSettings(max_iterations=4, warmups=1),
            checkpoint=checkpoint, parallel=2)
    except KeyboardInterrupt:
        # The sweep's finally blocks have run by now: the pool is shut
        # down and the journal is closed.  Prove every forked worker was
        # reaped: with no children left, waitpid raises ChildProcessError.
        try:
            os.waitpid(-1, os.WNOHANG)
            print("LIVE_CHILDREN", flush=True)
            sys.exit(7)
        except ChildProcessError:
            print("INTERRUPTED_CLEAN", flush=True)
            sys.exit(42)
    print("COMPLETED", flush=True)
    sys.exit(0)
""")


@needs_fork
class TestSigtermShutdown:
    def test_sigterm_reaps_workers_and_leaves_a_resumable_journal(
            self, tmp_path):
        checkpoint = str(tmp_path / "sigterm.checkpoint.json")
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ,
                   PYTHONPATH=src_dir, REPRO_RESULTS_DIR=str(tmp_path))
        proc = subprocess.Popen(
            [sys.executable, "-c", CHILD, checkpoint],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            # Wait for the sweep to be genuinely in flight (two cells
            # journaled), then pull the trigger.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                try:
                    if len(verify_journal(checkpoint).cells) >= 2:
                        break
                except Exception:
                    pass  # journal mid-compaction; try again
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("sweep never journaled a cell")
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        if proc.returncode == 0:
            pytest.skip("sweep finished before SIGTERM landed")
        assert proc.returncode == 42, (out, err)
        assert "INTERRUPTED_CLEAN" in out
        assert "LIVE_CHILDREN" not in out

        # The journal closed on a record boundary: fully intact, partial.
        report = verify_journal(checkpoint)
        assert report.ok, report.render()
        assert 2 <= len(report.cells) < 24

        # ... and a resumed run completes the grid from where it stopped.
        from repro.bench.harness import run_sweep
        from repro.bench.imb import ImbSettings
        from repro.mpi import stacks

        resumed = run_sweep(
            experiment="sigterm", machine="dancer", operation="bcast",
            nprocs=4, stacks=[stacks.TUNED_SM, stacks.KNEM_COLL],
            sizes=[2 ** k for k in range(8, 20)],
            settings=ImbSettings(max_iterations=4, warmups=1),
            checkpoint=checkpoint)
        assert resumed.stats.cells_resumed == len(report.cells)
        assert sum(len(s.times) for s in resumed.series) == 24
