"""The journal writer lease, and the corruption it exists to prevent.

``TestWhyTheLeaseExists`` is the regression demonstration: two unleased
writers appending to one journal through buffered file handles splice
their streams into a corrupt interior record.  The rest checks the lease
itself (typed refusal naming the holder, per-open-file-description
conflict, idempotent release) and that ``run_sweep`` holds it for the
duration of a checkpointed sweep.

``TestContextScopedHooks`` covers the companion shared-state fix: the
journal-wrapper and profile-dir hooks are :mod:`contextvars`-scoped, so
one thread's (or one served client's) hook can never leak into another's
sweep, and a crash inside the scope cannot leave the hook armed.
"""

from __future__ import annotations

import threading

import pytest

from repro.bench import harness
from repro.bench.harness import (
    acquire_journal_lease,
    run_sweep,
    verify_journal,
)
from repro.bench.imb import ImbSettings
from repro.errors import BenchmarkError
from repro.mpi import stacks
from repro.units import KiB

pytestmark = pytest.mark.skipif(
    harness.fcntl is None, reason="the journal lease needs fcntl.flock")


def seeded_journal(path) -> str:
    """A valid two-record format-3 journal on disk."""
    with open(path, "w") as fh:
        fh.write('{"format": 3, "header": null}\n')
        fh.write(harness._journal_line("a|1024", 0.25))
        fh.write(harness._journal_line("b|1024", 0.5))
    return str(path)


class TestWhyTheLeaseExists:
    def test_unleased_writers_interleave_into_a_corrupt_record(
            self, tmp_path):
        """Two buffered appenders, no lease: each writes its record in two
        flushes (exactly what a large record split across a buffer
        boundary does), and the journal ends up with spliced lines that
        fail their checksums."""
        path = seeded_journal(tmp_path / "sweep.checkpoint.json")
        a, b = open(path, "a"), open(path, "a")
        line_a = harness._journal_line("writerA|2048", 1.5)
        line_b = harness._journal_line("writerB|2048", 2.5)
        # Writer A flushes half a record; writer B's append lands inside
        # it; writer A completes.  With O_APPEND each flush is atomic at
        # the file offset, but nothing orders the flushes of two writers.
        a.write(line_a[:20]); a.flush()
        b.write(line_b); b.flush()
        a.write(line_a[20:]); a.flush()
        a.close(); b.close()

        report = verify_journal(path)
        assert not report.ok
        assert len(report.cells) == 2          # the pre-existing records
        assert "writerA|2048" not in report.cells  # spliced, checksum-dead
        # Recoverable damage, not a poisoned journal: the corrupt splice
        # is skipped-and-reported and would recompute on --resume.
        assert report.skipped or report.torn_tail

    def test_the_lease_turns_that_race_into_a_typed_error(self, tmp_path):
        path = seeded_journal(tmp_path / "sweep.checkpoint.json")
        with acquire_journal_lease(path):
            with pytest.raises(BenchmarkError) as err:
                acquire_journal_lease(path)
        assert "locked by another writer" in str(err.value)
        assert "held by pid" in str(err.value)


class TestLeaseMechanics:
    def test_release_allows_reacquire(self, tmp_path):
        path = str(tmp_path / "j.checkpoint.json")
        lease = acquire_journal_lease(path)
        lease.release()
        lease.release()  # idempotent
        with acquire_journal_lease(path):
            pass

    def test_lock_lives_on_a_sidecar_not_the_journal(self, tmp_path):
        # Compaction replaces the journal inode (os.replace); an flock on
        # the journal itself would silently stop excluding anyone after
        # the first compaction.  The sidecar survives replacement.
        path = str(tmp_path / "j.checkpoint.json")
        with acquire_journal_lease(path) as lease:
            assert lease._fh is not None
            assert lease._fh.name == path + ".lock"

    def test_run_sweep_holds_the_lease_while_journaling(self, tmp_path):
        checkpoint = str(tmp_path / "sweep.checkpoint.json")
        calls = []
        real_append = harness._journal_append

        def spying_append(fh, key, t):
            # Mid-sweep, with the journal open: a second writer must be
            # refused right now, not only at open time.
            if not calls:
                with pytest.raises(BenchmarkError, match="locked"):
                    acquire_journal_lease(checkpoint)
            calls.append(key)
            real_append(fh, key, t)

        harness._journal_append = spying_append
        try:
            run_sweep(
                experiment="lease", machine="dancer", operation="bcast",
                nprocs=4, stacks=[stacks.TUNED_SM], sizes=[32 * KiB],
                settings=ImbSettings(max_iterations=1, warmups=0),
                checkpoint=checkpoint)
        finally:
            harness._journal_append = real_append
        assert calls  # the spy really ran inside the sweep
        # ... and the lease is gone afterwards: reacquire succeeds.
        with acquire_journal_lease(checkpoint):
            pass

    def test_two_leases_on_different_journals_coexist(self, tmp_path):
        with acquire_journal_lease(str(tmp_path / "one.json")):
            with acquire_journal_lease(str(tmp_path / "two.json")):
                pass


def _identity_wrapper(fh):
    return fh


class TestContextScopedHooks:
    def test_journal_wrapper_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with harness.journal_wrapper(_identity_wrapper):
                assert harness._JOURNAL_WRAPPER.get() is _identity_wrapper
                raise RuntimeError("sweep died")
        assert harness._JOURNAL_WRAPPER.get() is None

    def test_profile_dir_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with harness.profile_dir("/tmp/prof"):
                assert harness._PROFILE_DIR.get() == "/tmp/prof"
                raise RuntimeError("sweep died")
        assert harness._PROFILE_DIR.get() is None

    def test_hooks_do_not_leak_across_threads(self):
        seen = {}

        def other_thread():
            seen["wrapper"] = harness._JOURNAL_WRAPPER.get()
            seen["profile"] = harness._PROFILE_DIR.get()

        with harness.journal_wrapper(_identity_wrapper), \
                harness.profile_dir("/tmp/prof"):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join(timeout=10)
        # A fresh thread runs in a fresh context: the hooks armed in this
        # thread are invisible there (pre-fix module globals leaked).
        assert seen == {"wrapper": None, "profile": None}

    def test_nested_scopes_restore_the_outer_value(self):
        outer = _identity_wrapper

        def inner(fh):
            return fh
        with harness.journal_wrapper(outer):
            with harness.journal_wrapper(inner):
                assert harness._JOURNAL_WRAPPER.get() is inner
            assert harness._JOURNAL_WRAPPER.get() is outer
        assert harness._JOURNAL_WRAPPER.get() is None
