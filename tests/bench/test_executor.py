"""Serial/parallel sweep equivalence: same cells, same bytes.

The executor's whole contract is that ``run_sweep(parallel=N)`` is an
implementation detail: every (stack, size) cell builds a fresh machine and
the simulator iterates deterministically, so fanning cells across worker
processes must change *nothing observable* — CSVs are byte-identical,
checkpoints are interchangeable between serial and parallel runs, fault
plans inject identically, and a parallel sweep that dies mid-run resumes
(serially or in parallel) to the same bytes.
"""

import multiprocessing
import os

import pytest

import repro.bench.harness as harness
from repro.bench.executor import resolve_jobs, run_experiments
from repro.bench.harness import checkpoint_path, run_sweep
from repro.bench.imb import ImbSettings
from repro.errors import BenchmarkError, RankFailed
from repro.faults.plan import FaultPlan, FaultRule
from repro.mpi import stacks
from repro.units import KiB

SIZES = [32 * KiB, 128 * KiB]
STACKS = [stacks.TUNED_SM, stacks.KNEM_COLL]
SETTINGS = ImbSettings(max_iterations=1, warmups=0)
N_CELLS = len(SIZES) * len(STACKS)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="monkeypatch inheritance needs the fork start method")


@pytest.fixture
def results_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


def sweep(parallel=1, checkpoint=None, fault_plan=None, experiment="par",
          retry_limit=None):
    kwargs = {} if retry_limit is None else {"retry_limit": retry_limit}
    return run_sweep(
        experiment=experiment, machine="dancer", operation="bcast", nprocs=4,
        stacks=STACKS, sizes=SIZES, settings=SETTINGS, reference="KNEM-Coll",
        checkpoint=checkpoint, fault_plan=fault_plan, parallel=parallel,
        **kwargs)


class TestEquivalence:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_csv_is_byte_identical_to_serial(self, results_dir,
                                                      jobs):
        serial = sweep(parallel=1).to_csv(str(results_dir / "serial.csv"))
        par = sweep(parallel=jobs).to_csv(str(results_dir / "parallel.csv"))
        assert open(par, "rb").read() == open(serial, "rb").read()

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_equals_serial_under_fault_plan(self, results_dir,
                                                     jobs):
        plan = FaultPlan([FaultRule(op="register", probability=0.5)], seed=7)
        serial = sweep(parallel=1, fault_plan=plan).to_csv(
            str(results_dir / "serial.csv"))
        par = sweep(parallel=jobs, fault_plan=plan).to_csv(
            str(results_dir / "parallel.csv"))
        assert open(par, "rb").read() == open(serial, "rb").read()

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_checkpoint_is_byte_identical_to_serial(
            self, results_dir, jobs):
        ser_ckpt = checkpoint_path("ser", "dancer")
        par_ckpt = checkpoint_path("par", "dancer")
        sweep(parallel=1, checkpoint=ser_ckpt, experiment="ser")
        sweep(parallel=jobs, checkpoint=par_ckpt, experiment="par")
        # Cell lines land in completion order; cell *values* must match.
        ser = sorted(open(ser_ckpt).read().splitlines()[1:])
        par = sorted(open(par_ckpt).read().splitlines()[1:])
        assert ser == par

    def test_checkpoints_interchange_between_modes(
            self, results_dir, monkeypatch):
        # A parallel-written checkpoint resumes a serial sweep with zero
        # re-runs, and vice versa.
        ckpt = checkpoint_path("par", "dancer")
        first = sweep(parallel=2, checkpoint=ckpt)
        calls = []
        monkeypatch.setattr(harness, "imb_time",
                            lambda *a, **kw: calls.append(a) or 0.0)
        again = sweep(parallel=1, checkpoint=ckpt)
        assert calls == []
        assert [s.times for s in again.series] == [s.times for s in first.series]

        ckpt2 = checkpoint_path("ser", "dancer")
        monkeypatch.undo()
        second = sweep(parallel=1, checkpoint=ckpt2, experiment="ser")
        monkeypatch.setattr(harness, "imb_time",
                            lambda *a, **kw: calls.append(a) or 0.0)
        resumed = sweep(parallel=2, checkpoint=ckpt2, experiment="ser")
        assert calls == []
        assert [s.times for s in resumed.series] == \
               [s.times for s in second.series]


class TestRankFaults:
    """Rank-level fault rules behave identically serial and parallel."""

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_rank_stall_sweep_is_byte_identical_to_serial(
            self, results_dir, jobs):
        # A stalled rank slows every cell but fails nothing: the full
        # byte-identity contract must hold on the degraded timings too.
        plan = FaultPlan(
            [FaultRule(op="rank.stall", core=2, delay=1e-4)], seed=3)
        serial = sweep(parallel=1, fault_plan=plan).to_csv(
            str(results_dir / "serial.csv"))
        par = sweep(parallel=jobs, fault_plan=plan).to_csv(
            str(results_dir / "parallel.csv"))
        assert open(par, "rb").read() == open(serial, "rb").read()

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_rank_crash_raises_the_same_error_at_any_job_count(
            self, results_dir, jobs):
        # A crashed rank aborts the sweep; the pool must surface the same
        # typed error a serial sweep raises (RankFailed pickles intact).
        plan = FaultPlan.crash(core=2, index=0)
        with pytest.raises(RankFailed) as err:
            sweep(parallel=jobs, fault_plan=plan)
        assert err.value.rank == 2
        # index=0 kills the victim at its first collective entry: the IMB
        # loop's sync barrier, not the measured bcast.
        assert err.value.op == "barrier"

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_rank_crash_journal_resumes_to_serial_bytes(
            self, results_dir, jobs):
        # Cells journaled before the crash surfaced are valid: dropping the
        # crash rule and resuming completes to the no-fault serial bytes.
        baseline = sweep(parallel=1).to_csv(str(results_dir / "baseline.csv"))
        ckpt = checkpoint_path("par", "dancer")
        # Size-windowed: only cells at the top size crash (the barrier and
        # the small cells pass), so the journal gains valid small cells.
        plan = FaultPlan(
            [FaultRule(op="rank.crash", core=2, min_size=SIZES[-1])],
            seed=11)
        with pytest.raises(RankFailed):
            sweep(parallel=jobs, checkpoint=ckpt, fault_plan=plan)
        resumed = sweep(parallel=jobs, checkpoint=ckpt).to_csv(
            str(results_dir / "resumed.csv"))
        assert open(resumed, "rb").read() == open(baseline, "rb").read()


class TestTornTailResume:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_resume_from_torn_journal_tail_is_byte_identical(
            self, results_dir, jobs):
        baseline = sweep(parallel=1).to_csv(str(results_dir / "baseline.csv"))
        ckpt = checkpoint_path("par", "dancer")
        sweep(parallel=2, checkpoint=ckpt)
        # Tear the final journal line mid-append, the on-disk signature of
        # a sweep killed between write and fsync.
        raw = open(ckpt, "rb").read()
        assert raw.endswith(b"\n")
        torn = raw[:-10]
        with open(ckpt, "wb") as fh:
            fh.write(torn)
        resumed_result = sweep(parallel=jobs, checkpoint=ckpt)
        # Exactly the torn cell re-ran; every intact line was reused.
        assert resumed_result.stats.cells_run == 1
        assert resumed_result.stats.cells_resumed == N_CELLS - 1
        resumed = resumed_result.to_csv(str(results_dir / "resumed.csv"))
        assert open(resumed, "rb").read() == open(baseline, "rb").read()


class OneCellBomb:
    """Fail exactly one chosen cell, let every other cell run for real."""

    def __init__(self, bad_key):
        self.real = harness.imb_time
        self.bad_key = bad_key

    def __call__(self, machine, stack, nprocs, op, size, settings,
                 *args, **kwargs):
        if f"{stack.name}|{size}" == self.bad_key:
            raise BenchmarkError(f"injected failure in {self.bad_key}")
        return self.real(machine, stack, nprocs, op, size, settings,
                         *args, **kwargs)


@needs_fork
class TestCrashResume:
    def test_parallel_failure_then_serial_resume_is_byte_identical(
            self, results_dir, monkeypatch):
        baseline = sweep(parallel=1).to_csv(str(results_dir / "baseline.csv"))
        ckpt = checkpoint_path("par", "dancer")
        bad = f"{STACKS[-1].name}|{SIZES[-1]}"
        monkeypatch.setattr(harness, "imb_time", OneCellBomb(bad))
        with pytest.raises(BenchmarkError, match="injected"):
            sweep(parallel=2, checkpoint=ckpt)
        monkeypatch.undo()

        journal = open(ckpt).read().splitlines()
        assert 1 <= len(journal) <= N_CELLS  # header + cells that completed

        resumed = sweep(parallel=1, checkpoint=ckpt).to_csv(
            str(results_dir / "resumed.csv"))
        assert open(resumed, "rb").read() == open(baseline, "rb").read()

    def test_parallel_failure_then_parallel_resume_is_byte_identical(
            self, results_dir, monkeypatch):
        baseline = sweep(parallel=1).to_csv(str(results_dir / "baseline.csv"))
        ckpt = checkpoint_path("par", "dancer")
        bad = f"{STACKS[0].name}|{SIZES[0]}"
        monkeypatch.setattr(harness, "imb_time", OneCellBomb(bad))
        with pytest.raises(BenchmarkError, match="injected"):
            sweep(parallel=2, checkpoint=ckpt)
        monkeypatch.undo()

        resumed = sweep(parallel=2, checkpoint=ckpt).to_csv(
            str(results_dir / "resumed.csv"))
        assert open(resumed, "rb").read() == open(baseline, "rb").read()

    def test_forked_workers_see_monkeypatched_imb_time(
            self, results_dir, monkeypatch):
        monkeypatch.setattr(harness, "imb_time",
                            lambda m, stack, n, op, size, s: float(size))
        result = sweep(parallel=2)
        for s in result.series:
            assert s.times == {size: float(size) for size in SIZES}


class DieOnce:
    """os._exit(3) — a fail-stop worker death, no exception message — the
    first time the chosen cell is measured; later attempts run normally."""

    def __init__(self, flag_path, bad_key):
        self.flag = str(flag_path)
        self.bad_key = bad_key

    def __call__(self, machine, stack, nprocs, op, size, settings,
                 *args, **kwargs):
        if f"{stack.name}|{size}" == self.bad_key \
                and not os.path.exists(self.flag):
            open(self.flag, "w").close()
            os._exit(3)
        return float(size)


@needs_fork
class TestWorkerDeath:
    def test_dead_worker_cells_requeue_and_rerun_exactly_once(
            self, results_dir, tmp_path, monkeypatch):
        bad = f"{STACKS[0].name}|{SIZES[-1]}"
        monkeypatch.setattr(
            harness, "imb_time", DieOnce(tmp_path / "died.flag", bad))
        result = sweep(parallel=2)
        # Every cell landed exactly once with the right value despite the
        # mid-chunk death...
        for s in result.series:
            assert s.times == {size: float(size) for size in SIZES}
        # ...and the pool accounted for the recovery.
        assert os.path.exists(tmp_path / "died.flag")
        assert result.stats.pool_requeued >= 1
        assert result.stats.pool_workers == 2

    def test_worker_death_sweep_matches_serial_bytes(
            self, results_dir, tmp_path, monkeypatch):
        monkeypatch.setattr(harness, "imb_time",
                            lambda m, stack, n, op, size, s: float(size))
        baseline = sweep(parallel=1).to_csv(str(results_dir / "serial.csv"))
        bad = f"{STACKS[-1].name}|{SIZES[0]}"
        monkeypatch.setattr(
            harness, "imb_time", DieOnce(tmp_path / "died.flag", bad))
        par = sweep(parallel=2).to_csv(str(results_dir / "parallel.csv"))
        assert open(par, "rb").read() == open(baseline, "rb").read()


class DieAlways:
    """A poison cell: *every* attempt to measure it kills the worker."""

    def __init__(self, bad_key):
        self.bad_key = bad_key

    def __call__(self, machine, stack, nprocs, op, size, settings,
                 *args, **kwargs):
        if f"{stack.name}|{size}" == self.bad_key:
            os._exit(3)
        return float(size)


@needs_fork
class TestQuarantine:
    """The quarantine ladder end-to-end through real worker processes."""

    def test_poison_cell_aborts_typed_and_the_sweep_completes(
            self, results_dir, monkeypatch):
        bad = f"{STACKS[0].name}|{SIZES[-1]}"
        monkeypatch.setattr(harness, "imb_time", DieAlways(bad))
        result = sweep(parallel=2, retry_limit=2)
        # The sweep converged (no hang, no unbounded respawn loop) with a
        # typed abort recorded for exactly the poison cell...
        assert sorted(result.aborted) == [bad]
        abort = result.aborted[bad]
        assert abort.deaths == 2
        assert "aborted after 2 worker death(s)" in abort.describe()
        # ...exactly one respawn per budgeted death, no more...
        assert result.stats.pool_respawns == 2
        assert result.stats.cells_aborted == 1
        assert result.stats.chunks_quarantined >= 1
        assert "ABORTED: 1 cell(s) quarantined" in result.stats.render()
        # ...and every healthy cell still landed with the right value,
        # the aborted cell absent from its series (not NaN, not zero).
        for s in result.series:
            want = {size: float(size) for size in SIZES
                    if f"{s.name}|{size}" != bad}
            assert s.times == want

    def test_quarantined_cell_recomputes_on_resume(
            self, results_dir, monkeypatch):
        monkeypatch.setattr(harness, "imb_time",
                            lambda m, stack, n, op, size, s: float(size))
        baseline = sweep(parallel=1).to_csv(str(results_dir / "baseline.csv"))
        ckpt = checkpoint_path("par", "dancer")
        bad = f"{STACKS[-1].name}|{SIZES[0]}"
        monkeypatch.setattr(harness, "imb_time", DieAlways(bad))
        poisoned = sweep(parallel=2, checkpoint=ckpt, retry_limit=2)
        assert sorted(poisoned.aborted) == [bad]
        # The abort was never journaled as a measurement, so a later run
        # with the poison gone recomputes exactly that cell and heals the
        # sweep to the fault-free bytes.
        assert bad not in open(ckpt).read()
        monkeypatch.setattr(harness, "imb_time",
                            lambda m, stack, n, op, size, s: float(size))
        resumed_result = sweep(parallel=1, checkpoint=ckpt)
        assert resumed_result.stats.cells_run == 1
        assert resumed_result.stats.cells_resumed == N_CELLS - 1
        assert resumed_result.aborted == {}
        resumed = resumed_result.to_csv(str(results_dir / "resumed.csv"))
        assert open(resumed, "rb").read() == open(baseline, "rb").read()

    def test_aborts_drive_the_cli_exit_code(self, results_dir, monkeypatch,
                                            capsys):
        from repro.bench.cli import (
            EXIT_ABORTED,
            EXIT_DEGRADED,
            EXIT_OK,
            _result_exit,
        )
        bad = f"{STACKS[0].name}|{SIZES[0]}"
        monkeypatch.setattr(harness, "imb_time", DieAlways(bad))
        result = sweep(parallel=2, retry_limit=1)
        assert _result_exit(result, strict=False) == EXIT_ABORTED
        assert "ABORTED par/dancer" in capsys.readouterr().err
        monkeypatch.setattr(harness, "imb_time",
                            lambda m, stack, n, op, size, s: float(size))
        healthy = sweep(parallel=2)
        assert _result_exit(healthy, strict=False) == EXIT_OK
        assert _result_exit(healthy, strict=True) == EXIT_OK
        # --strict flips degraded-KNEM sweeps (but never healthy ones) to
        # a distinct nonzero exit.
        healthy.stats.cells_degraded = 2
        assert _result_exit(healthy, strict=False) == EXIT_OK
        assert _result_exit(healthy, strict=True) == EXIT_DEGRADED
        assert "degraded KNEM health" in capsys.readouterr().err


class TestPoolStats:
    @needs_fork
    def test_parallel_sweep_surfaces_pool_diagnostics(self, results_dir):
        st = sweep(parallel=2).stats
        assert st.pool_workers == 2
        assert st.pool_chunks >= 1
        assert st.pool_requeued == 0
        assert "pool: 2 workers" in st.render()

    def test_serial_sweep_has_no_pool_stats(self, results_dir):
        st = sweep(parallel=1).stats
        assert st.pool_workers == 0
        assert "pool:" not in st.render()


class TestStats:
    def test_sweep_stats_counts_cells_and_events(self, results_dir):
        result = sweep(parallel=1)
        st = result.stats
        assert st.cells_run == N_CELLS
        assert st.cells_resumed == 0
        assert st.sim_events > 0
        assert st.process_resumes > 0
        assert st.peak_heap > 0
        assert st.wall_seconds > 0
        assert st.events_per_sec > 0
        assert "events/sec" in st.render()

    @needs_fork
    def test_parallel_sweep_reports_same_sim_counters(self, results_dir):
        serial = sweep(parallel=1).stats
        par = sweep(parallel=2).stats
        assert par.sim_events == serial.sim_events
        assert par.process_resumes == serial.process_resumes
        assert par.peak_heap == serial.peak_heap


class TestExecutorApi:
    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        with pytest.raises(BenchmarkError):
            resolve_jobs(-1)

    def test_run_experiments_preserves_order(self, results_dir):
        kwargs = {"scale": "smoke", "resume": False, "jobs": 1}
        specs = [("fig5", "dancer", kwargs), ("fig6", "dancer", kwargs)]
        results = run_experiments(specs, jobs=2)
        assert [r.experiment for r in results] == ["fig5", "fig6"]
        assert all(r.machine == "dancer" for r in results)
