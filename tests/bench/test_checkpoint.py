"""Crash-safe sweep checkpoints: kill a sweep mid-run, resume, same bytes.

``run_sweep(checkpoint=...)`` journals each completed (stack, size) cell to
an append-only JSONL file next to the CSV (format 3: one header line plus
one checksummed line per cell, compacted on load).  These tests pin the
whole contract: an interrupted sweep resumed from its checkpoint re-runs
only the missing cells and produces a byte-identical CSV, a checkpoint
from a *different* sweep is refused, corrupt *interior* records are
skipped-and-reported (their cells recompute — never silently wrong
numbers), a torn final line (crash mid-append) just re-runs that cell, and
old format-1/2 checkpoints are migrated transparently (format 2, which has
no checksums, keeps its stricter corrupt-is-a-typed-error contract).
"""

import json
import os

import pytest

import repro.bench.harness as harness
from repro.bench.cli import main as bench_main
from repro.bench.harness import checkpoint_path, run_sweep, verify_journal
from repro.bench.imb import ImbSettings
from repro.errors import BenchmarkError
from repro.mpi import stacks
from repro.units import KiB

SIZES = [32 * KiB, 128 * KiB]
STACKS = [stacks.TUNED_SM, stacks.KNEM_COLL]
SETTINGS = ImbSettings(max_iterations=1, warmups=0)
N_CELLS = len(SIZES) * len(STACKS)


def read_journal(path, expect_format=3):
    """Parse the JSONL journal into (header, cells) like the loader does."""
    lines = open(path).read().splitlines()
    head = json.loads(lines[0])
    assert head["format"] == expect_format
    cells = {}
    for line in lines[1:]:
        rec = json.loads(line)
        if expect_format == 3:
            assert "ck" in rec  # every format-3 record carries a checksum
        cells[rec["cell"]] = rec["t"]
    return head["header"], cells


def downgrade_to_format2(path):
    """Rewrite a format-3 journal as its byte-compatible format-2 ancestor."""
    lines = open(path).read().splitlines()
    head = json.loads(lines[0])
    head["format"] = 2
    out = [json.dumps(head, sort_keys=True)]
    for line in lines[1:]:
        rec = json.loads(line)
        out.append(json.dumps({"cell": rec["cell"], "t": rec["t"]}))
    with open(path, "w") as fh:
        fh.write("\n".join(out) + "\n")


@pytest.fixture
def results_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


def sweep(checkpoint=None, experiment="ckpt", **overrides):
    kw = dict(experiment=experiment, machine="dancer", operation="bcast",
              nprocs=4, stacks=STACKS, sizes=SIZES, settings=SETTINGS,
              reference="KNEM-Coll", checkpoint=checkpoint)
    kw.update(overrides)
    return run_sweep(**kw)


class Interrupter:
    """Let ``n_before_kill`` cells through, then die like a real SIGINT."""

    def __init__(self, n_before_kill):
        self.real = harness.imb_time
        self.n_before_kill = n_before_kill
        self.calls = 0

    def __call__(self, *args, **kwargs):
        if self.calls >= self.n_before_kill:
            raise KeyboardInterrupt
        self.calls += 1
        return self.real(*args, **kwargs)


class TestResume:
    def test_interrupted_then_resumed_csv_is_byte_identical(
            self, results_dir, monkeypatch):
        baseline = sweep().to_csv(str(results_dir / "baseline.csv"))
        ckpt = checkpoint_path("ckpt", "dancer")

        monkeypatch.setattr(harness, "imb_time", Interrupter(2))
        with pytest.raises(KeyboardInterrupt):
            sweep(checkpoint=ckpt)
        monkeypatch.undo()

        _header, cells = read_journal(ckpt)
        assert len(cells) == 2  # exactly the completed cells
        assert not os.path.exists(ckpt + ".tmp")  # rename, no debris

        resumed = sweep(checkpoint=ckpt).to_csv(str(results_dir / "resumed.csv"))
        assert open(resumed, "rb").read() == open(baseline, "rb").read()

    def test_resume_skips_journaled_cells(self, results_dir, monkeypatch):
        ckpt = checkpoint_path("ckpt", "dancer")
        monkeypatch.setattr(harness, "imb_time", Interrupter(3))
        with pytest.raises(KeyboardInterrupt):
            sweep(checkpoint=ckpt)
        monkeypatch.undo()

        counter = Interrupter(N_CELLS)  # never fires; just counts
        monkeypatch.setattr(harness, "imb_time", counter)
        sweep(checkpoint=ckpt)
        assert counter.calls == N_CELLS - 3  # only the missing cell ran

    def test_completed_sweep_resumes_without_any_rerun(
            self, results_dir, monkeypatch):
        ckpt = checkpoint_path("ckpt", "dancer")
        first = sweep(checkpoint=ckpt)
        counter = Interrupter(N_CELLS)
        monkeypatch.setattr(harness, "imb_time", counter)
        again = sweep(checkpoint=ckpt)
        assert counter.calls == 0
        assert [s.times for s in again.series] == [s.times for s in first.series]
        assert again.stats.cells_resumed == N_CELLS
        assert again.stats.cells_run == 0

    def test_torn_final_line_reruns_only_that_cell(
            self, results_dir, monkeypatch):
        # A crash mid-append leaves a torn last line; the loader drops it
        # (that cell re-runs) and keeps every complete line before it.
        ckpt = checkpoint_path("ckpt", "dancer")
        sweep(checkpoint=ckpt)
        raw = open(ckpt).read().splitlines(keepends=True)
        with open(ckpt, "w") as fh:
            fh.writelines(raw[:-1])
            fh.write(raw[-1][: len(raw[-1]) // 2])  # torn tail
        counter = Interrupter(N_CELLS)
        monkeypatch.setattr(harness, "imb_time", counter)
        sweep(checkpoint=ckpt)
        assert counter.calls == 1

    def test_bad_interior_line_skips_and_recomputes(
            self, results_dir, monkeypatch):
        # Format 3: a corrupt interior record is skipped-and-reported and
        # exactly that cell recomputes — corruption never poisons the rest.
        ckpt = checkpoint_path("ckpt", "dancer")
        sweep(checkpoint=ckpt)
        raw = open(ckpt).read().splitlines(keepends=True)
        raw[1] = "{ not json\n"  # corruption *before* the final line
        with open(ckpt, "w") as fh:
            fh.writelines(raw)
        counter = Interrupter(N_CELLS)
        monkeypatch.setattr(harness, "imb_time", counter)
        res = sweep(checkpoint=ckpt)
        assert counter.calls == 1
        assert res.stats.journal_skipped == 1
        assert [e.category for e in res.stats.events] == ["journal.skip"]

    def test_bad_interior_line_in_format2_is_a_typed_error(
            self, results_dir):
        # Format 2 has no checksums, so a malformed interior line keeps
        # its historical strict contract: typed error, never a guess.
        ckpt = checkpoint_path("ckpt", "dancer")
        sweep(checkpoint=ckpt)
        downgrade_to_format2(ckpt)
        raw = open(ckpt).read().splitlines(keepends=True)
        raw[1] = "{ not json\n"
        with open(ckpt, "w") as fh:
            fh.writelines(raw)
        with pytest.raises(BenchmarkError, match="corrupt"):
            sweep(checkpoint=ckpt)


class TestMigration:
    def test_format1_checkpoint_is_migrated(self, results_dir, monkeypatch):
        # Build a complete journal, rewrite it in the retired format-1
        # layout (one JSON document), and resume: no cell re-runs and the
        # file comes back as a format-3 journal.
        ckpt = checkpoint_path("ckpt", "dancer")
        first = sweep(checkpoint=ckpt)
        header, cells = read_journal(ckpt)
        with open(ckpt, "w") as fh:
            json.dump({"header": header, "cells": cells}, fh, sort_keys=True)
        counter = Interrupter(N_CELLS)
        monkeypatch.setattr(harness, "imb_time", counter)
        again = sweep(checkpoint=ckpt)
        assert counter.calls == 0
        assert [s.times for s in again.series] == [s.times for s in first.series]
        migrated_header, migrated_cells = read_journal(ckpt)
        assert migrated_header == header
        assert migrated_cells == cells

    def test_format2_checkpoint_is_byte_compatible(
            self, results_dir, monkeypatch):
        # A pre-checksum format-2 journal resumes with zero re-runs and
        # identical times (byte-compatible migration), and compaction
        # upgrades it to format 3 in place.
        ckpt = checkpoint_path("ckpt", "dancer")
        first = sweep(checkpoint=ckpt)
        downgrade_to_format2(ckpt)
        header2, cells2 = read_journal(ckpt, expect_format=2)
        counter = Interrupter(N_CELLS)
        monkeypatch.setattr(harness, "imb_time", counter)
        again = sweep(checkpoint=ckpt)
        assert counter.calls == 0
        assert [s.times for s in again.series] == [s.times for s in first.series]
        header3, cells3 = read_journal(ckpt)
        assert header3 == header2
        assert cells3 == cells2

    def test_format1_header_mismatch_still_refused(self, results_dir):
        ckpt = checkpoint_path("ckpt", "dancer")
        sweep(checkpoint=ckpt)
        header, cells = read_journal(ckpt)
        header = dict(header, nprocs=8)
        with open(ckpt, "w") as fh:
            json.dump({"header": header, "cells": cells}, fh, sort_keys=True)
        with pytest.raises(BenchmarkError, match="different sweep"):
            sweep(checkpoint=ckpt)


class TestValidation:
    def test_checkpoint_of_other_sweep_is_refused(self, results_dir):
        ckpt = checkpoint_path("ckpt", "dancer")
        sweep(checkpoint=ckpt)
        with pytest.raises(BenchmarkError, match="different sweep"):
            sweep(checkpoint=ckpt, operation="allgather")
        with pytest.raises(BenchmarkError, match="different sweep"):
            sweep(checkpoint=ckpt, nprocs=8)
        with pytest.raises(BenchmarkError, match="different sweep"):
            sweep(checkpoint=ckpt,
                  settings=ImbSettings(max_iterations=2, warmups=0))

    def test_corrupt_checkpoint_is_a_typed_error(self, results_dir):
        ckpt = checkpoint_path("ckpt", "dancer")
        with open(ckpt, "w") as fh:
            fh.write("{ not json")
        with pytest.raises(BenchmarkError, match="corrupt"):
            sweep(checkpoint=ckpt)

    def test_unknown_journal_format_is_a_typed_error(self, results_dir):
        ckpt = checkpoint_path("ckpt", "dancer")
        with open(ckpt, "w") as fh:
            fh.write('{"format": 99, "header": {}}\n')
        with pytest.raises(BenchmarkError, match="corrupt"):
            sweep(checkpoint=ckpt)

    def test_missing_checkpoint_starts_fresh(self, results_dir):
        ckpt = checkpoint_path("ckpt", "dancer")
        res = sweep(checkpoint=ckpt)
        assert os.path.exists(ckpt)
        _header, cells = read_journal(ckpt)
        assert len(cells) == N_CELLS
        for s in res.series:
            for size, t in s.times.items():
                assert cells[f"{s.name}|{size}"] == t

    def test_checkpoint_floats_round_trip_exactly(self, results_dir):
        # json round-trip must preserve the float bit pattern, else the
        # resumed CSV would differ in the low digits
        ckpt = checkpoint_path("ckpt", "dancer")
        res = sweep(checkpoint=ckpt)
        _header, cells = read_journal(ckpt)
        for s in res.series:
            for size, t in s.times.items():
                assert cells[f"{s.name}|{size}"] == t


class TestInteriorCorruption:
    """Satellite: resume after mid-file corruption (not just the torn tail).

    Flip bytes inside interior journal records and assert skip-and-report
    recovery recomputes exactly the damaged cells and the final CSV is
    byte-identical to an undamaged run.
    """

    def _flip(self, path, lineno, col=20):
        raw = open(path).read().splitlines(keepends=True)
        line = raw[lineno]
        ch = line[col]
        new = "x" if ch != "x" else "y"
        raw[lineno] = line[:col] + new + line[col + 1:]
        with open(path, "w") as fh:
            fh.writelines(raw)

    def test_flipped_bytes_recompute_exactly_damaged_cells(
            self, results_dir, monkeypatch):
        baseline = sweep().to_csv(str(results_dir / "baseline.csv"))
        ckpt = checkpoint_path("ckpt", "dancer")
        sweep(checkpoint=ckpt)
        # Damage two interior records (lines 2 and 3 of header+4 records).
        self._flip(ckpt, 1)
        self._flip(ckpt, 2)
        counter = Interrupter(N_CELLS)
        monkeypatch.setattr(harness, "imb_time", counter)
        res = sweep(checkpoint=ckpt)
        assert counter.calls == 2  # exactly the two damaged cells re-ran
        assert res.stats.journal_skipped == 2
        assert res.stats.cells_resumed == N_CELLS - 2
        resumed = res.to_csv(str(results_dir / "resumed.csv"))
        assert open(resumed, "rb").read() == open(baseline, "rb").read()

    def test_checksum_catches_a_parseable_lie(self, results_dir,
                                              monkeypatch):
        # Flip one digit of a recorded time: the line still parses as
        # JSON, but the checksum no longer matches — without it the
        # resumed sweep would silently publish a wrong number.
        ckpt = checkpoint_path("ckpt", "dancer")
        sweep(checkpoint=ckpt)
        raw = open(ckpt).read().splitlines(keepends=True)
        rec = json.loads(raw[1])
        rec["t"] = rec["t"] * 2  # plausible but wrong
        raw[1] = json.dumps({"cell": rec["cell"], "t": rec["t"],
                             "ck": rec["ck"]}) + "\n"
        with open(ckpt, "w") as fh:
            fh.writelines(raw)
        counter = Interrupter(N_CELLS)
        monkeypatch.setattr(harness, "imb_time", counter)
        res = sweep(checkpoint=ckpt)
        assert counter.calls == 1
        assert res.stats.journal_skipped == 1

    def test_verify_journal_reports_damage(self, results_dir):
        ckpt = checkpoint_path("ckpt", "dancer")
        sweep(checkpoint=ckpt)
        assert verify_journal(ckpt).ok
        self._flip(ckpt, 1)
        report = verify_journal(ckpt)
        assert not report.ok
        assert len(report.skipped) == 1
        assert report.skipped[0].lineno == 2
        assert len(report.cells) == N_CELLS - 1
        assert "recompute" in report.render()


class TestCli:
    def test_table1_rejects_resume(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            bench_main(["table1", "--resume"])
        assert exc_info.value.code == 2
        assert "--resume applies to sweep experiments" in capsys.readouterr().err

    def test_verify_journal_clean_exits_zero(self, results_dir, capsys):
        ckpt = checkpoint_path("ckpt", "dancer")
        sweep(checkpoint=ckpt)
        assert bench_main(["--verify-journal", str(ckpt)]) == 0
        assert "every record intact" in capsys.readouterr().out

    def test_verify_journal_damaged_exits_five(self, results_dir, capsys):
        ckpt = checkpoint_path("ckpt", "dancer")
        sweep(checkpoint=ckpt)
        raw = open(ckpt).read().splitlines(keepends=True)
        raw[1] = "{ not json\n"
        with open(ckpt, "w") as fh:
            fh.writelines(raw)
        assert bench_main(["--verify-journal", str(ckpt)]) == 5
        assert "corrupt line 2" in capsys.readouterr().out

    def test_verify_journal_rejects_experiment_arg(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            bench_main(["fig4", "--verify-journal", "x.json"])
        assert exc_info.value.code == 2

    def test_missing_experiment_is_an_error(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            bench_main([])
        assert exc_info.value.code == 2
