"""Exactly-once properties of the warm-pool chunk scheduler (hypothesis).

The executor's process shell is exercised end-to-end by
tests/bench/test_executor.py; this suite drives the pure
:class:`~repro.bench.chunking.ChunkScheduler` through randomized worker
interleavings — chunks completing out of order, workers dying mid-chunk,
dead workers flushing late duplicate results — and checks the invariants
the sweep's byte-identical output hinges on:

- every cell ends up with exactly one recorded result,
- the merged result set is independent of completion order,
- a worker death loses nothing and duplicates nothing (``fail`` requeues
  exactly the unrecorded remainder, first-wins drops late flushes).

The death-driving suites construct their schedulers with
``retry_limit=None``: they kill workers arbitrarily often, and the pure
exactly-once core must hold through unbounded requeues.  The quarantine
ladder that *bounds* those requeues (suspect isolation, typed
:class:`CellAborted` after the retry budget) is covered separately by
:class:`TestRetryBudget`.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.chunking import CellAborted, ChunkScheduler
from repro.errors import BenchmarkError

#: pure per-cell result value — records are order-independent iff the
#: merged map equals {cell: value(cell)} no matter which attempt landed.
def value(cell: int) -> str:
    return f"cell-{cell}"


costs_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=48)
seeds = st.integers(min_value=0, max_value=10**9)


def drive(sched: ChunkScheduler, rng, *, die_p: float = 0.0,
          late_flush_p: float = 0.0, workers: int = 1) -> dict[int, int]:
    """Simulate the executor's dispatch loop; returns per-cell yield counts.

    Mirrors run_cells: up to ``workers`` chunks in flight, each step picks a
    random outstanding chunk and either completes it (recording every cell)
    or kills its worker after a random prefix (recording only that prefix,
    then ``fail``).  With ``late_flush_p``, a killed worker's unrecorded
    cells are re-reported later as the late duplicates a real dead worker
    can flush into the result queue.
    """
    in_flight: list = []
    late: list[int] = []
    yielded: dict[int, int] = {}

    def record(cell: int) -> None:
        if sched.record(cell, value(cell)):
            yielded[cell] = yielded.get(cell, 0) + 1
            sched.observe(cell, rng.random() * 10.0)

    while not sched.finished:
        while len(in_flight) < workers:
            chunk = sched.next_chunk()
            if chunk is None:
                break
            in_flight.append(chunk)
        # The scheduler must never strand cells: unfinished implies work
        # is queued or outstanding (the executor's stall check relies on
        # the contrapositive).
        assert in_flight, "scheduler stalled with cells unrecorded"
        chunk = in_flight.pop(rng.randrange(len(in_flight)))
        if rng.random() < die_p:
            k = rng.randrange(len(chunk.cells) + 1)
            for cell in chunk.cells[:k]:
                record(cell)
            # The requeued remainder is exactly the unrecorded tail (a
            # late flush may already have recorded some of these cells
            # from an earlier incarnation of the same work).
            expect_lost = set(chunk.cells[k:]) - set(yielded)
            lost = sched.fail(chunk.id)
            assert set(lost) == expect_lost
            if rng.random() < late_flush_p:
                late.extend(chunk.cells[k:])
        else:
            for cell in chunk.cells:
                record(cell)
            sched.complete(chunk.id)
        if late and rng.random() < 0.5:
            record(late.pop(rng.randrange(len(late))))
    for cell in late:  # drain any flushes still pending at the end
        record(cell)
    return yielded


class TestExactlyOnce:
    @given(costs=costs_lists, workers=st.integers(1, 6), seed=seeds)
    @settings(max_examples=60)
    def test_every_cell_yields_exactly_once_without_failures(
            self, costs, workers, seed):
        sched = ChunkScheduler(costs, workers=workers)
        yielded = drive(sched, random.Random(seed), workers=workers)
        assert yielded == {c: 1 for c in range(len(costs))}
        assert sched.results() == {c: value(c) for c in range(len(costs))}
        assert sched.chunks_failed == 0
        assert sched.duplicates_dropped == 0

    @given(costs=costs_lists, workers=st.integers(1, 6), seed=seeds)
    @settings(max_examples=60)
    def test_worker_deaths_lose_and_duplicate_nothing(
            self, costs, workers, seed):
        sched = ChunkScheduler(costs, workers=workers, retry_limit=None)
        yielded = drive(sched, random.Random(seed), die_p=0.4,
                        late_flush_p=0.6, workers=workers)
        # Exactly once out, first-wins in: requeued cells re-ran, late
        # flushes from the dead worker were dropped, nothing was lost.
        assert yielded == {c: 1 for c in range(len(costs))}
        assert sched.results() == {c: value(c) for c in range(len(costs))}

    @given(costs=costs_lists, workers=st.integers(1, 6),
           seed_a=seeds, seed_b=seeds)
    @settings(max_examples=40)
    def test_merged_results_are_completion_order_independent(
            self, costs, workers, seed_a, seed_b):
        merged = []
        for seed in (seed_a, seed_b):
            sched = ChunkScheduler(costs, workers=workers, retry_limit=None)
            drive(sched, random.Random(seed), die_p=0.3, late_flush_p=0.5,
                  workers=workers)
            merged.append(sched.results())
        assert merged[0] == merged[1]


class TestChunkCarving:
    @given(costs=costs_lists, workers=st.integers(1, 6),
           oversubscribe=st.integers(1, 8))
    @settings(max_examples=60)
    def test_chunks_partition_the_cells(self, costs, workers, oversubscribe):
        sched = ChunkScheduler(costs, workers=workers,
                               oversubscribe=oversubscribe)
        seen: list[int] = []
        while True:
            chunk = sched.next_chunk()
            if chunk is None:
                break
            assert 1 <= len(chunk.cells) <= ChunkScheduler.MAX_CHUNK
            seen.extend(chunk.cells)
        assert sorted(seen) == list(range(len(costs)))
        assert len(set(seen)) == len(seen)

    @given(costs=costs_lists, seed=seeds)
    @settings(max_examples=40)
    def test_observe_reshapes_chunks_but_not_coverage(self, costs, seed):
        # Wildly wrong cost feedback may change chunk shapes, never the
        # exactly-once outcome.
        classes = ["even" if i % 2 == 0 else "odd" for i in range(len(costs))]
        sched = ChunkScheduler(costs, workers=2, classes=classes,
                               retry_limit=None)
        yielded = drive(sched, random.Random(seed), die_p=0.2, workers=2)
        assert yielded == {c: 1 for c in range(len(costs))}

    def test_tail_chunks_shrink(self):
        # Equal-cost cells with oversubscribe=2 on one worker: the first
        # chunk takes half the queue, later chunks take half the rest.
        sched = ChunkScheduler([1.0] * 16, workers=1, oversubscribe=2)
        sizes = []
        while True:
            chunk = sched.next_chunk()
            if chunk is None:
                break
            sizes.append(len(chunk.cells))
        assert sizes[0] == 8
        assert sizes[0] >= sizes[-1]
        assert sum(sizes) == 16


class TestApiContract:
    def test_record_is_first_wins(self):
        sched = ChunkScheduler([1.0, 1.0], workers=1)
        chunk = sched.next_chunk()
        assert sched.record(chunk.cells[0], "a") is True
        assert sched.record(chunk.cells[0], "b") is False
        assert sched.results()[chunk.cells[0]] == "a"
        assert sched.duplicates_dropped == 1

    def test_record_unknown_cell_raises(self):
        sched = ChunkScheduler([1.0], workers=1)
        with pytest.raises(BenchmarkError):
            sched.record(5, "x")
        with pytest.raises(BenchmarkError):
            sched.record(-1, "x")

    def test_fail_requeues_only_unrecorded_cells(self):
        # retry_limit=None: with the ladder armed the survivors would be
        # suspect and re-issue as singletons (see TestRetryBudget).
        sched = ChunkScheduler([1.0] * 4, workers=1, oversubscribe=1,
                               retry_limit=None)
        chunk = sched.next_chunk()
        assert chunk.cells == (0, 1, 2, 3)
        sched.record(0, value(0))
        sched.record(2, value(2))
        assert sched.fail(chunk.id) == (1, 3)
        assert sched.cells_requeued == 2
        requeued = sched.next_chunk()
        assert requeued.cells == (1, 3)

    def test_complete_requeues_cells_a_lost_message_left_behind(self):
        sched = ChunkScheduler([1.0, 1.0], workers=1, oversubscribe=1)
        chunk = sched.next_chunk()
        sched.record(0, value(0))
        assert sched.complete(chunk.id) == (1,)
        assert not sched.finished
        assert sched.next_chunk().cells == (1,)

    def test_closing_a_chunk_twice_raises(self):
        sched = ChunkScheduler([1.0], workers=1)
        chunk = sched.next_chunk()
        sched.record(0, value(0))
        sched.complete(chunk.id)
        with pytest.raises(BenchmarkError):
            sched.complete(chunk.id)
        with pytest.raises(BenchmarkError):
            sched.fail(chunk.id)

    def test_idle_differs_from_finished_after_drain(self):
        sched = ChunkScheduler([1.0, 1.0], workers=1, oversubscribe=1)
        chunk = sched.next_chunk()
        sched.record(0, value(0))
        sched.fail(chunk.id)  # cell 1 requeued
        tail = sched.next_chunk()
        sched.fail(tail.id)  # requeued again...
        sched.next_chunk()  # ...and carved again, never recorded
        assert not sched.idle  # still outstanding
        assert not sched.finished

    def test_constructor_validation(self):
        with pytest.raises(BenchmarkError):
            ChunkScheduler([1.0], workers=0)
        with pytest.raises(BenchmarkError):
            ChunkScheduler([1.0], workers=1, oversubscribe=0)
        with pytest.raises(BenchmarkError):
            ChunkScheduler([1.0, 2.0], workers=1, classes=["only-one"])
        with pytest.raises(BenchmarkError):
            ChunkScheduler([1.0], workers=1, retry_limit=0)
        with pytest.raises(BenchmarkError):
            ChunkScheduler([1.0], workers=1, retry_limit=-3)


def drain_poison(sched: ChunkScheduler, poison: int,
                 max_steps: int) -> tuple[int, bool]:
    """Drive a scheduler whose ``poison`` cell kills every worker it
    touches; healthy chunkmates are recorded before the death (the dying
    worker got that far).  Returns (steps taken, converged)."""
    steps = 0
    while not sched.finished and steps < max_steps:
        steps += 1
        chunk = sched.next_chunk()
        assert chunk is not None, "scheduler stalled"
        if poison in chunk.cells:
            for cell in chunk.cells:
                if cell != poison:
                    sched.record(cell, value(cell))
            sched.fail(chunk.id)
            sched.drain_aborted()
        else:
            for cell in chunk.cells:
                sched.record(cell, value(cell))
            sched.complete(chunk.id)
    return steps, sched.finished


class TestRetryBudget:
    """The quarantine ladder: isolate suspects, abort at the budget.

    The last test is the pre-PR failure demonstration the acceptance
    criteria call for: with the ladder disabled (``retry_limit=None``,
    the old executor's behaviour) a poison cell is requeued forever and
    the sweep never converges; with any finite budget it converges in a
    bounded number of dispatches, yielding a typed :class:`CellAborted`.
    """

    def test_failed_chunks_survivors_reissue_alone(self):
        # One failed 4-cell chunk: all unrecorded cells become suspect
        # and are re-issued as singletons, ahead of any fresh work.
        sched = ChunkScheduler([1.0] * 6, workers=1, oversubscribe=1,
                               retry_limit=3)
        chunk = sched.next_chunk()
        assert len(chunk.cells) > 1
        sched.fail(chunk.id)
        for cell in chunk.cells:
            single = sched.next_chunk()
            assert single.cells == (cell,)
            sched.record(cell, value(cell))
            sched.complete(single.id)

    def test_completion_clears_the_suspect_mark(self):
        # A suspect cell that completes sheds its mark: cells recorded via
        # a successful chunk never linger in the suspect set, so the
        # scheduler batches the remainder normally.
        sched = ChunkScheduler([1.0] * 2, workers=1, oversubscribe=1,
                               retry_limit=3)
        chunk = sched.next_chunk()
        sched.fail(chunk.id)  # both cells suspect now
        first = sched.next_chunk()
        assert first.cells == (0,)
        sched.record(0, value(0))
        sched.complete(first.id)
        second = sched.next_chunk()
        assert second.cells == (1,)
        sched.record(1, value(1))
        sched.complete(second.id)
        assert sched.finished
        assert sched.cells_aborted == 0

    def test_quarantine_at_the_budget_is_the_cells_result(self):
        sched = ChunkScheduler([1.0] * 3, workers=1, oversubscribe=1,
                               retry_limit=2)
        steps, converged = drain_poison(sched, poison=1, max_steps=50)
        assert converged
        assert sched.cells_aborted == 1
        assert sched.chunks_quarantined == 1
        assert sched.drain_aborted() == []  # drained during the drive
        abort = sched.results()[1]
        assert isinstance(abort, CellAborted)
        assert abort.cell == 1
        assert abort.deaths == 2
        assert "2 worker death(s)" in abort.describe()
        # Exactly-once still holds: the abort *is* the result, and the
        # healthy cells carry real values.
        assert sched.results()[0] == value(0)
        assert sched.results()[2] == value(2)

    def test_drain_aborted_yields_each_abort_once(self):
        sched = ChunkScheduler([1.0] * 2, workers=1, oversubscribe=1,
                               retry_limit=1)
        chunk = sched.next_chunk()
        sched.fail(chunk.id)  # budget 1: both cells quarantine instantly
        drained = sched.drain_aborted()
        assert [c for c, _ in drained] == [0, 1]
        assert all(isinstance(a, CellAborted) for _, a in drained)
        assert sched.drain_aborted() == []
        assert sched.finished

    def test_double_fail_raises_before_any_counter_moves(self):
        sched = ChunkScheduler([1.0] * 2, workers=1, oversubscribe=1,
                               retry_limit=2)
        chunk = sched.next_chunk()
        sched.fail(chunk.id)
        snapshot = (sched.chunks_failed, sched.cells_requeued,
                    sched.cells_aborted, sched.chunks_quarantined)
        with pytest.raises(BenchmarkError):
            sched.fail(chunk.id)  # late liveness poll racing a pipe EOF
        assert (sched.chunks_failed, sched.cells_requeued,
                sched.cells_aborted, sched.chunks_quarantined) == snapshot

    @given(n=st.integers(2, 24), poison=st.integers(0, 23),
           limit=st.integers(1, 4), workers=st.integers(1, 4))
    @settings(max_examples=60)
    def test_any_finite_budget_converges_bounded(
            self, n, poison, limit, workers):
        poison %= n
        sched = ChunkScheduler([1.0] * n, workers=workers,
                               retry_limit=limit)
        # Bound: every healthy dispatch retires >= 1 cell, the poison cell
        # dies at most `limit` times, and each death splinters at most one
        # chunk into singleton retries.
        steps, converged = drain_poison(sched, poison,
                                        max_steps=3 * n + 3 * limit + 3)
        assert converged
        assert sched.cells_aborted == 1
        assert isinstance(sched.results()[poison], CellAborted)
        assert sched.results()[poison].deaths == limit

    def test_no_budget_requeues_forever(self):
        # Pre-quarantine behaviour: the poison cell bounces between queue
        # and a dying worker indefinitely — 200 dispatches in, the sweep
        # still has not converged and never aborts anything.
        sched = ChunkScheduler([1.0] * 4, workers=2, retry_limit=None)
        steps, converged = drain_poison(sched, poison=2, max_steps=200)
        assert not converged
        assert steps == 200
        assert sched.cells_aborted == 0
        assert 2 not in sched.results()
