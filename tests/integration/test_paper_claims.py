"""Shape-level checks of the paper's headline claims, at reduced scale.

These are the claims DESIGN.md commits to reproducing; each test asserts
the *direction and rough magnitude* at one or two grid points so the suite
stays fast.  The full grids live in ``benchmarks/`` and ``repro-bench``.
"""

import pytest

from repro.bench.imb import ImbSettings, imb_time
from repro.mpi import stacks
from repro.units import KiB, MiB

FAST = ImbSettings(max_iterations=1)


def ratio(machine, nprocs, op, msg, stack, ref=stacks.KNEM_COLL):
    other = imb_time(machine, stack, nprocs, op, msg, FAST)
    knem = imb_time(machine, ref, nprocs, op, msg, FAST)
    return other / knem


class TestFigure5Bcast:
    def test_zoot_beats_sm_stacks(self):
        assert ratio("zoot", 16, "bcast", 512 * KiB, stacks.TUNED_SM) > 1.3
        assert ratio("zoot", 16, "bcast", 512 * KiB, stacks.MPICH2_SM) > 1.3

    def test_dancer_beats_all(self):
        for st in stacks.PAPER_STACKS[:-1]:
            assert ratio("dancer", 8, "bcast", 512 * KiB, st) > 1.0, st.name

    def test_ig_beats_tuned(self):
        assert ratio("ig", 48, "bcast", 512 * KiB, stacks.TUNED_SM) > 1.5
        assert ratio("ig", 48, "bcast", 512 * KiB, stacks.TUNED_KNEM) > 1.3


class TestFigure6Gather:
    @pytest.mark.parametrize("machine,nprocs,floor", [
        ("zoot", 16, 1.3), ("dancer", 8, 1.5), ("saturn", 16, 1.5),
        ("ig", 48, 1.5),
    ])
    def test_gather_wins_everywhere(self, machine, nprocs, floor):
        for st in (stacks.TUNED_SM, stacks.MPICH2_SM):
            assert ratio(machine, nprocs, "gather", 512 * KiB, st) > floor, st.name

    def test_direction_control_is_the_mechanism(self):
        """Disabling sender-writing erases most of the Gather win."""
        with_dir = imb_time("zoot", stacks.KNEM_COLL, 16, "gather",
                            512 * KiB, FAST)
        without = imb_time("zoot",
                           stacks.KNEM_COLL.with_tuning(
                               gather_direction_write=False),
                           16, "gather", 512 * KiB, FAST)
        assert without > 1.3 * with_dir


class TestFigure4Hierarchy:
    def test_hierarchy_and_pipeline_shape(self):
        def t(stack):
            return imb_time("ig", stack, 48, "bcast", 2 * MiB, FAST)

        pipe = t(stacks.KNEM_COLL)
        nopipe = t(stacks.KNEM_COLL.with_tuning(pipeline=False))
        linear = t(stacks.KNEM_COLL.with_tuning(hierarchical=False))
        # paper: hierarchy alone 2.2-2.4x, pipelining up to 1.25x more
        assert 1.8 < linear / nopipe < 3.0
        assert 1.05 < nopipe / pipe < 1.6

    def test_pipeline_size_sweet_spot(self):
        """4 KB segments are too small (sync overhead); 16 KB better
        (Figure 4's intermediate-size tuning).  The simulated margin is
        small (a few percent, vs the paper's pronounced 4 KB penalty), so
        this pins the *direction* under the same off-cache conditions the
        Figure 4 bench uses."""
        cold = ImbSettings(max_iterations=1, warmups=0)

        def t(seg):
            stack = stacks.KNEM_COLL.with_tuning(
                pipeline_seg_intermediate=seg, pipeline_seg_large=seg,
                pipeline_large_at=1 << 62)
            return imb_time("ig", stack, 48, "bcast", 512 * KiB, cold)

        assert t(4 * KiB) > t(16 * KiB)


class TestFigure7Alltoall:
    def test_beats_sm_on_zoot_and_ig(self):
        assert ratio("zoot", 16, "alltoallv", 256 * KiB, stacks.TUNED_SM) > 1.2
        assert ratio("ig", 48, "alltoallv", 128 * KiB, stacks.TUNED_SM) > 1.1

    def test_margin_over_tuned_knem_smaller_than_over_sm(self):
        """Section VI-D: gains vs Tuned-KNEM are smaller than vs Tuned-SM."""
        vs_sm = ratio("zoot", 16, "alltoallv", 256 * KiB, stacks.TUNED_SM)
        vs_knem = ratio("zoot", 16, "alltoallv", 256 * KiB, stacks.TUNED_KNEM)
        assert vs_knem < vs_sm


class TestFigure8Allgather:
    def test_knem_best_on_zoot(self):
        for st in (stacks.TUNED_SM, stacks.MPICH2_SM):
            assert ratio("zoot", 16, "allgather", 256 * KiB, st) > 1.0, st.name

    def test_tuned_knem_wins_on_ig(self):
        """The paper's own negative result: the gather+bcast assembly loses
        to Tuned-KNEM's ring on the large NUMA machine."""
        r = ratio("ig", 48, "allgather", 128 * KiB, stacks.TUNED_KNEM)
        assert r < 1.0


class TestTableOneAsp:
    def test_ordering_and_compute_calibration(self):
        from repro.apps.asp import AspConfig, run_asp_timed

        cfg = AspConfig(n=16384, nprocs=16)
        rows = {}
        for name, st in (("omp", stacks.TUNED_SM), ("mpich", stacks.MPICH2_SM),
                         ("knem", stacks.KNEM_COLL)):
            rows[name] = run_asp_timed("zoot", st, cfg, sample=512)
        # KNEM-Coll spends the least time broadcasting (Table I's point)
        assert rows["knem"].bcast_time < rows["omp"].bcast_time
        assert rows["knem"].bcast_time < rows["mpich"].bcast_time
        # compute matches the paper's total-minus-bcast ~2485 s within 5%
        assert rows["knem"].compute_time == pytest.approx(2485.0, rel=0.05)
        # totals keep the paper's ordering
        assert rows["knem"].total_time < rows["omp"].total_time


class TestRegistrationAmortization:
    def test_knem_coll_saves_registrations(self):
        from repro.bench.experiments import ablation_registration

        stats = ablation_registration("dancer")
        assert (stats["KNEM-Coll"]["registrations"]
                < stats["Tuned-KNEM"]["registrations"])
