"""End-to-end differential oracle for the vectorized fast path.

tests/hardware/test_vector_flows.py pins the flow network in isolation and
tests/simtime/test_cohort.py pins the event loop; this suite closes the
loop at the *observable* level a sweep or an analysis run sees: full MPI
jobs on the four paper machines must produce identical trace streams,
identical :class:`~repro.bench.imb.CellStats` counters, and identical
analyzer verdicts (static verifier clean, KNEM-San clean) whether the
scalar oracle or the vector path (cohort dispatch + numpy flow updates)
ran underneath.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import vector
from repro.analysis.static import SingleCopySanitizer, verify_schedule
from repro.bench.imb import ImbSettings, consume_cell_stats, imb_time
from repro.errors import RankFailed
from repro.faults import FaultPlan
from repro.mpi import Job, Machine, stacks
from repro.units import KiB

NPROCS = 8
COUNT = 96 * KiB  # above KNEM-Coll's delegation threshold
FAST = ImbSettings(max_iterations=1)


def _bcast_program(proc, count):
    buf = proc.alloc_array(count, "u1")
    if proc.rank == 0:
        buf.array[:] = (np.arange(count) % 251).astype(np.uint8)
    yield from proc.comm.bcast(buf.sim, 0, count, root=0)
    ok = np.array_equal(buf.array, (np.arange(count) % 251).astype(np.uint8))
    return (proc.rank, bool(ok))


#: trace fields drawn from process-global ``itertools.count`` pools
#: (``Request._ids``, ``SimBuffer._ids``, envelope ``seq``, handshake
#: ``hb``): their absolute values depend on how many jobs ran earlier in
#: this process, so streams are compared after renumbering them by first
#: appearance.
_VOLATILE = ("req", "seq", "hb")


def _pool(key: str):
    # every ``*buf`` field names a SimBuffer id, so they share one pool;
    # the other volatile counters renumber independently
    if key == "buf" or key.endswith("_buf"):
        return "buf"
    return key if key in _VOLATILE else None


def canonical(records):
    remap: dict[str, dict] = {}
    out = []
    for rec in records:
        fields = {}
        for key, val in rec.fields.items():
            pool = _pool(key)
            if pool is not None:
                ids = remap.setdefault(pool, {})
                val = ids.setdefault(val, len(ids))
            fields[key] = val
        out.append((rec.time, rec.category, tuple(sorted(fields.items()))))
    return out


def _looping_program(proc, count):
    """Repeated broadcasts — a long-lived job for a timed crash to hit."""
    buf = proc.alloc_array(count, "u1")
    if proc.rank == 0:
        buf.array[:] = (np.arange(count) % 251).astype(np.uint8)
    for _ in range(50):
        yield from proc.comm.bcast(buf.sim, 0, count, root=0)
    return (proc.rank, True)


def run_traced_job(spec, vectorized: bool):
    """One KNEM-Coll bcast job with full tracing; returns its observables."""
    machine = Machine.build(spec, trace=True, vector=vectorized)
    machine.mem.network.vector_min_flows = 0  # numpy on every rebalance
    job = Job(machine, nprocs=NPROCS, stack=stacks.KNEM_COLL)
    result = job.run(_bcast_program, COUNT)
    return machine, result


class TestJobTraceOracle:
    def test_trace_stream_and_counters_match_scalar(self, paper_machine):
        s_machine, s_result = run_traced_job(paper_machine, False)
        v_machine, v_result = run_traced_job(paper_machine, True)
        assert v_result.values == s_result.values
        assert all(ok for _rank, ok in s_result.values)
        assert v_result.finish_times == s_result.finish_times
        # The full trace stream: every record (category, time, fields), in
        # order — this is what repro-trace and the analyzers consume.
        assert canonical(v_machine.tracer.records) == \
            canonical(s_machine.tracer.records)
        assert v_machine.tracer.counters == s_machine.tracer.counters
        # Simulator counters, which feed CellStats and the bench journal.
        assert v_machine.sim.events_processed == s_machine.sim.events_processed
        assert v_machine.sim.process_resumes == s_machine.sim.process_resumes
        assert v_machine.sim.peak_heap == s_machine.sim.peak_heap
        assert v_machine.sim.now == s_machine.sim.now

    def test_fast_paths_actually_ran(self, paper_machine):
        v_machine, _ = run_traced_job(paper_machine, True)
        assert v_machine.sim.cohorts_dispatched >= 1
        assert v_machine.mem.network.vector_assignments > 0
        assert v_machine.mem.network.scalar_assignments == 0
        s_machine, _ = run_traced_job(paper_machine, False)
        assert s_machine.sim.cohorts_dispatched == 0
        assert s_machine.mem.network.vector_assignments == 0


class TestImbCellOracle:
    def test_imb_time_and_cell_stats_match(self, paper_machine):
        # The sweep's actual per-cell measurement path: the process-wide
        # flag is how the executor selects the mode, so flip it the same
        # way and demand identical timings *and* identical counters.
        with vector.forced(False):
            s_time = imb_time(paper_machine, stacks.KNEM_COLL, NPROCS,
                              "bcast", COUNT, FAST)
            s_stats = consume_cell_stats()
        with vector.forced(True):
            v_time = imb_time(paper_machine, stacks.KNEM_COLL, NPROCS,
                              "bcast", COUNT, FAST)
            v_stats = consume_cell_stats()
        assert v_time == s_time  # bitwise: this value prints into the CSV
        assert v_stats == s_stats


class TestHeterogeneousJobOracle:
    """Mixed-kind cohorts at the full-job level: a timed rank crash (a
    timer-lane deadline), in-flight flow completions (heap events), and
    the survivors' shrink-and-retry all collide inside one simulation —
    the trace stream and every counter must still match the scalar loop
    bit for bit on each paper machine."""

    @given(victim=st.integers(1, NPROCS - 1),
           crash_at=st.sampled_from([5e-5, 1e-4, 2e-4]))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_timed_crash_job_matches_scalar(self, paper_machine, victim,
                                            crash_at):
        def run(vectorized: bool):
            machine = Machine.build(paper_machine, trace=True,
                                    vector=vectorized)
            machine.mem.network.vector_min_flows = 0
            machine.arm_faults(
                FaultPlan.crash(core=victim, at_time=crash_at).fork())
            job = Job(machine, nprocs=NPROCS, stack=stacks.KNEM_COLL)
            with pytest.raises(RankFailed) as exc_info:
                job.run(_looping_program, COUNT)
            err = exc_info.value
            return machine, (err.rank, err.op), dict(job.world.dead)

        s_machine, s_err, s_dead = run(False)
        v_machine, v_err, v_dead = run(True)
        assert v_err == s_err
        assert v_dead == s_dead
        assert canonical(v_machine.tracer.records) == \
            canonical(s_machine.tracer.records)
        assert v_machine.tracer.counters == s_machine.tracer.counters
        assert v_machine.sim.events_processed == s_machine.sim.events_processed
        assert v_machine.sim.process_resumes == s_machine.sim.process_resumes
        assert v_machine.sim.peak_heap == s_machine.sim.peak_heap
        assert v_machine.sim.now == s_machine.sim.now
        # the crash actually fired, and the vector run actually vectorized
        assert s_machine.fault_plan.injected.get("rank.crash") == 1
        assert v_machine.sim.cohorts_dispatched >= 1
        assert v_machine.mem.network.vector_assignments > 0


class TestAnalyzerOracle:
    def test_static_verifier_verdicts_unchanged(self, paper_machine):
        def verdict():
            result = verify_schedule("knem.bcast",
                                     machine=paper_machine.name,
                                     nprocs=NPROCS)
            return result.clean, result.skipped, result.receipts, [
                f.render() for f in result.findings]

        with vector.forced(False):
            scalar = verdict()
        with vector.forced(True):
            vectored = verdict()
        assert vectored == scalar
        assert scalar[0], scalar[3]  # clean on every paper machine

    def test_knem_san_clean_with_identical_times(self, paper_machine):
        def sanitized(vectorized: bool):
            machine = Machine.build(paper_machine, vector=vectorized)
            machine.mem.network.vector_min_flows = 0
            machine.arm_sanitizer(SingleCopySanitizer())
            job = Job(machine, nprocs=NPROCS, stack=stacks.KNEM_COLL)
            result = job.run(_bcast_program, COUNT)
            return machine, result

        s_machine, s_result = sanitized(False)
        v_machine, v_result = sanitized(True)
        assert s_machine.sanitizer.clean, [
            f.render() for f in s_machine.sanitizer.findings]
        assert v_machine.sanitizer.clean, [
            f.render() for f in v_machine.sanitizer.findings]
        assert v_result.values == s_result.values
        assert v_result.finish_times == s_result.finish_times
        assert v_machine.sim.now == s_machine.sim.now
