"""Acceptance tests for the chaos-campaign engine (ISSUE 8 tentpole).

The headline test runs a fixed-seed campaign that injects, in one sweep:
a deterministic poison cell (kills every worker that touches it), a
transient mid-sweep worker death, and one interior corrupt journal
record — and checks the campaign converts all of it into the invariants
the substrate promises: typed ``CellAborted`` quarantine (no hang,
bounded respawns), ``--resume`` recovering the corrupt record by
recomputation to reference-identical bytes, and KNEM-San reporting zero
findings and zero live regions.

``TestPrePrBehaviour`` is the regression demonstration the acceptance
criteria call for: the same poison workload driven with the quarantine
ladder *disabled* (``retry_limit=None`` — the pre-quarantine executor's
requeue-forever behaviour) never converges within a generous bounded
step budget, while any finite budget converges and yields the typed
abort.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.bench.chunking import CellAborted, ChunkScheduler
from repro.chaos import CampaignSpec, derive_dimensions, run_campaign
from repro.chaos.campaign import _resolve_stacks
from repro.chaos.cli import main as chaos_main
from repro.chaos.fsfaults import FaultyFile, FsFaultRule
from repro.chaos.injections import build_fault_plan, corrupt_journal
from repro.chaos.seeds import coin, derive, pick, uniform
from repro.errors import BenchmarkError

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="warm-pool chaos needs the fork start method")

#: the fixed acceptance seed; dimension forcing (not the seed's coins)
#: decides what injects, so the scenario is stable by construction.
SEED = 1

ACCEPTANCE = CampaignSpec(
    seed=SEED,
    jobs=2,
    retry_limit=2,
    poison=True,    # deterministic poison cell -> quarantine
    deaths=True,    # one transient mid-sweep worker death
    corrupt=True,   # one interior journal record bit-flipped
    crash=False,    # the sweep must complete (typed-abort arm is
                    # exercised by its own test below)
    fsfault=False,  # keep the journal complete so `corrupt` has an
                    # interior record to hit
    restart=False,  # the service-restart arm has its own test class
)


def oracle_map(report):
    return {o.name: o for o in report.oracles}


@needs_fork
class TestAcceptanceCampaign:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        workdir = tmp_path_factory.mktemp("chaos")
        return run_campaign(ACCEPTANCE, str(workdir))

    def test_campaign_passes_every_oracle(self, report):
        assert report.ok, report.render()
        assert {o.name for o in report.oracles} == {
            "identity", "chaos-cells", "typed-abort", "journal",
            "knem-san", "pool", "corrupt-recovery"}

    def test_dimensions_injected_what_the_scenario_needs(self, report):
        dims = report.dimensions
        assert dims["poison_key"] is not None
        assert len(dims["death_keys"]) == 1
        assert dims["corrupt_journal"] is True
        assert dims["crash"] is False

    def test_poison_cell_quarantined_typed_with_bounded_respawns(
            self, report):
        chaos = next(p for p in report.phases if p.name == "chaos")
        assert chaos.ok  # completed — no hang, no whole-sweep abort
        assert chaos.detail["cells_aborted"] == 1
        assert chaos.detail["chunks_quarantined"] >= 1
        # poison died retry_limit times, the transient death once:
        assert chaos.detail["pool_respawns"] == ACCEPTANCE.retry_limit + 1
        pool = oracle_map(report)["pool"]
        assert pool.ok and "within budget" in pool.detail

    def test_corrupt_record_recovered_by_recompute_on_resume(self, report):
        corrupt = next(p for p in report.phases if p.name == "corrupt")
        assert "lineno" in corrupt.detail  # a record really was flipped
        resume = next(p for p in report.phases if p.name == "resume")
        assert resume.ok
        assert resume.detail["journal_skipped"] >= 1
        om = oracle_map(report)
        assert om["corrupt-recovery"].ok
        assert om["identity"].ok  # resumed bytes == fault-free reference
        assert om["journal"].ok   # and the journal healed on disk

    def test_knem_san_zero_leaks_under_the_campaign_plan(self, report):
        verdict = oracle_map(report)["knem-san"]
        assert verdict.ok
        assert "zero findings, zero live regions" in verdict.detail

    def test_report_is_json_round_trippable(self, report):
        payload = json.loads(report.to_json())
        assert payload["ok"] is True
        assert payload["seed"] == SEED
        assert len(payload["phases"]) == 4
        assert "PASS" in report.render()


@needs_fork
class TestTypedAbortArm:
    def test_crash_dimension_ends_in_a_typed_abort_and_still_passes(
            self, tmp_path):
        spec = CampaignSpec(seed=3, jobs=2, crash=True, poison=False,
                            deaths=False, fsfault=False, corrupt=False)
        report = run_campaign(spec, str(tmp_path))
        assert report.ok, report.render()
        chaos = next(p for p in report.phases if p.name == "chaos")
        assert not chaos.ok and "RankFailed" in chaos.error
        assert oracle_map(report)["typed-abort"].ok

    def test_serial_substrate_masks_worker_death_dimensions(self, tmp_path):
        spec = CampaignSpec(seed=SEED, jobs=1, poison=True, deaths=True,
                            crash=False, fsfault=False, corrupt=True)
        report = run_campaign(spec, str(tmp_path))
        assert report.ok, report.render()
        assert report.dimensions["poison_key"] is None
        assert report.dimensions["death_keys"] == []


class TestServiceRestartArm:
    """The ``restart`` dimension: serve the grid twice across a sweep-
    server restart sharing one durable cache journal.  Serial substrate
    (jobs=1) keeps the arm fork-free, so it runs everywhere."""

    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        spec = CampaignSpec(
            seed=11, jobs=1, restart=True, crash=False, poison=False,
            deaths=False, fsfault=False, corrupt=False, knem=True,
            stall=False)
        workdir = tmp_path_factory.mktemp("chaos-restart")
        return run_campaign(spec, str(workdir))

    def test_restart_campaign_passes_every_oracle(self, report):
        assert report.ok, report.render()
        assert report.dimensions["service_restart"] is True
        assert "service-cache" in oracle_map(report)

    def test_reserved_grid_was_all_cache_hits(self, report):
        phase = next(p for p in report.phases
                     if p.name == "service-restart")
        assert phase.ok, phase.error
        # Phase detail carries the *restarted* server's counters: it must
        # have answered everything from the durable cache.
        assert phase.detail["cells_computed"] == 0
        assert phase.detail["cache_hits"] == 4
        verdict = oracle_map(report)["service-cache"]
        assert verdict.ok, verdict.detail
        assert "re-served from cache across a restart" in verdict.detail

    def test_phase_list_includes_the_fifth_phase(self, report):
        assert [p.name for p in report.phases] == [
            "reference", "chaos", "corrupt", "resume", "service-restart"]


class TestPrePrBehaviour:
    """The pre-quarantine executor requeues a poison cell forever.

    Driven against the pure scheduler core with a generous bounded step
    budget (the real pre-PR executor would burn one worker respawn per
    step, forever) — this test fails on the old behaviour when the ladder
    is what's disabled, and passes only because the budgeted scheduler
    converges.
    """

    N, POISON, STEPS = 6, 3, 300

    def drive(self, sched):
        steps = 0
        while not sched.finished and steps < self.STEPS:
            steps += 1
            chunk = sched.next_chunk()
            assert chunk is not None, "scheduler stalled"
            if self.POISON in chunk.cells:
                for cell in chunk.cells:
                    if cell != self.POISON:
                        sched.record(cell, float(cell))
                sched.fail(chunk.id)
                sched.drain_aborted()
            else:
                for cell in chunk.cells:
                    sched.record(cell, float(cell))
                sched.complete(chunk.id)
        return steps

    def test_without_the_ladder_the_poison_sweep_never_converges(self):
        sched = ChunkScheduler([1.0] * self.N, workers=2, retry_limit=None)
        steps = self.drive(sched)
        assert steps == self.STEPS and not sched.finished
        assert sched.cells_aborted == 0  # nothing ever quarantines

    def test_with_any_finite_budget_it_converges_to_a_typed_abort(self):
        sched = ChunkScheduler([1.0] * self.N, workers=2, retry_limit=2)
        steps = self.drive(sched)
        assert sched.finished and steps < self.STEPS
        assert isinstance(sched.results()[self.POISON], CellAborted)
        assert sched.cells_aborted == 1


class TestDeterminism:
    def test_same_seed_same_dimensions(self):
        keys = [f"{s.name}|{size}"
                for s in _resolve_stacks(ACCEPTANCE.stacks)
                for size in ACCEPTANCE.sizes]
        a = derive_dimensions(SEED, keys, poison=True, deaths=True)
        b = derive_dimensions(SEED, keys, poison=True, deaths=True)
        assert a == b
        plan_a = build_fault_plan(a)
        plan_b = build_fault_plan(b)
        assert (plan_a is None) == (plan_b is None)
        if plan_a is not None:
            assert plan_a.rules == plan_b.rules
            assert plan_a.seed == plan_b.seed

    def test_seed_helpers_are_stable_and_dimension_scoped(self):
        assert derive(7, "x") == derive(7, "x")
        assert derive(7, "x") != derive(7, "y")
        assert derive(7, "x", 0) != derive(7, "x", 1)
        assert 0.0 <= uniform(7, "u") < 1.0
        assert coin(7, "c", 1.0) is True
        assert coin(7, "c", 0.0) is False
        assert pick(7, "p", ["only"]) == "only"

    def test_corrupt_journal_hits_an_interior_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = ['{"format": 3}'] + [f'{{"cell": {i}}}' for i in range(4)]
        path.write_text("\n".join(lines) + "\n")
        damage = corrupt_journal(str(path), seed=5)
        after = path.read_text().splitlines()
        assert 2 <= damage["lineno"] <= len(lines) - 1  # interior only
        assert after[0] == lines[0]          # header untouched
        assert after[-1] == lines[-1]        # final line untouched
        assert after[damage["lineno"] - 1] != lines[damage["lineno"] - 1]
        assert len(after) == len(lines)      # no record split in two

    def test_corrupt_journal_skips_headerless_stubs(self, tmp_path):
        path = tmp_path / "stub.jsonl"
        path.write_text('{"format": 3}\n')
        assert corrupt_journal(str(path), seed=5) is None
        assert corrupt_journal(str(tmp_path / "missing"), seed=5) is None


class TestFsFaults:
    def test_modes_fire_once_after_the_budgeted_writes(self, tmp_path):
        for mode in ("eio", "enospc"):
            target = tmp_path / f"{mode}.txt"
            fh = FaultyFile(open(target, "w"), FsFaultRule(1, mode))
            fh.write("first\n")
            with pytest.raises(OSError):
                fh.write("second\n")
            assert fh.fired
            fh.close()
            assert target.read_text() == "first\n"

    def test_short_write_leaves_a_torn_prefix_then_raises(self, tmp_path):
        target = tmp_path / "short.txt"
        fh = FaultyFile(open(target, "w"), FsFaultRule(0, "short"))
        with pytest.raises(OSError):
            fh.write("0123456789")
        fh.close()
        assert target.read_text() == "01234"  # the torn half-record

    def test_unknown_mode_rejected(self):
        with pytest.raises(BenchmarkError):
            FsFaultRule(0, "gremlins")


@needs_fork
class TestCli:
    def test_acceptance_invocation_exits_zero_and_writes_report(
            self, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = chaos_main([
            "--seed", str(SEED), "--jobs", "2", "--retry-limit", "2",
            "--force", "poison", "--force", "deaths", "--force", "corrupt",
            "--disable", "crash", "--disable", "fsfault",
            "--workdir", str(tmp_path / "wd"), "--out", str(out)])
        assert rc == 0
        assert f"chaos campaign seed={SEED}: PASS" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["spec"]["retry_limit"] == 2

    def test_conflicting_force_and_disable_is_a_usage_error(self):
        with pytest.raises(SystemExit) as err:
            chaos_main(["--force", "poison", "--disable", "poison"])
        assert err.value.code == 2
