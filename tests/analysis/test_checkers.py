"""Each checker flags its seeded bug; shipped schedules come back clean."""

import pytest

from repro.analysis import DirectionSpec, build_model, run_analysis, run_checkers
from repro.analysis.findings import ERROR, WARNING
from repro.analysis.runner import _gather_program
from repro.mpi.stacks import KNEM_COLL
from repro.units import KiB
from tests.analysis import fixtures as fx


def analyze(program, *args, nprocs=2, machine="zoot", stack=KNEM_COLL,
            direction=None, checkers=None):
    job, deadlock, _error = fx.run_traced(machine, nprocs, stack,
                                          program, *args)
    model = build_model(job, deadlock=deadlock, direction_spec=direction)
    return run_checkers(model, checkers)


def categories(findings):
    return {f.category for f in findings}


class TestSeededBugs:
    def test_use_after_free_cookie_flagged(self):
        findings = analyze(fx.use_after_free_program, checkers=["cookie"])
        assert "use-after-deregister" in categories(findings)
        assert any(f.severity == ERROR for f in findings)

    def test_wrong_direction_flagged(self):
        findings = analyze(fx.wrong_direction_program, checkers=["direction"])
        assert "protection-violation" in categories(findings)

    def test_overlapping_concurrent_writes_flagged(self):
        findings = analyze(fx.racy_writes_program, nprocs=3,
                           checkers=["race"])
        assert "write-write-race" in categories(findings)
        race = next(f for f in findings if f.category == "write-write-race")
        assert race.severity == ERROR
        assert race.rank in (1, 2)

    def test_send_send_deadlock_diagnosed(self):
        findings = analyze(fx.send_send_deadlock_program,
                           checkers=["deadlock"])
        cats = categories(findings)
        assert "wait-cycle" in cats
        cycle = next(f for f in findings if f.category == "wait-cycle")
        assert sorted(cycle.details["cycle"]) == [0, 1]
        assert "rank 0" in cycle.message and "rank 1" in cycle.message
        # each stuck rank also gets its own explanation line
        assert sum(1 for f in findings if f.category == "cycle-member") == 2

    def test_out_of_band_cookie_flagged(self):
        side = {}
        findings = analyze(fx.oob_cookie_program, side, checkers=["cookie"])
        cats = categories(findings)
        assert "cookie-not-visible" in cats
        assert "leaked-region" in cats  # neither rank ever destroys it

    def test_overlapping_registration_warned(self):
        findings = analyze(fx.overlapping_registration_program, nprocs=1,
                           checkers=["cookie"])
        overlaps = [f for f in findings
                    if f.category == "overlapping-registration"]
        assert overlaps and all(f.severity == WARNING for f in overlaps)

    def test_root_reads_ablation_breaks_direction_contract(self):
        """Turning off gather's sender-writing strategy makes the root do
        every copy itself — both the direction mismatch and the
        serialization anti-pattern must surface."""
        findings = analyze(_gather_program, 64 * KiB, nprocs=8,
                           stack=fx.ABLATION_ROOT_READS,
                           direction=DirectionSpec("write", concurrent=True),
                           checkers=["direction"])
        cats = categories(findings)
        assert "direction-mismatch" in cats
        assert "root-serialization" in cats


KNEM_ALGOS = ["knem_bcast", "knem_scatter", "knem_gather",
              "knem_allgather", "knem_alltoallv"]


class TestShippedSchedulesClean:
    @pytest.mark.parametrize("machine", ["zoot", "ig"])
    @pytest.mark.parametrize("algo", KNEM_ALGOS)
    def test_knem_coll_clean(self, machine, algo):
        report = run_analysis(algo, machine=machine)
        assert not report.error, report.error
        assert report.clean, report.render()

    @pytest.mark.parametrize("algo", ["tuned_bcast", "mpich2_gather"])
    def test_p2p_stacks_clean(self, algo):
        report = run_analysis(algo, machine="zoot")
        assert not report.error, report.error
        assert report.clean, report.render()

    def test_report_deterministic(self):
        first = run_analysis("knem_bcast", machine="zoot")
        second = run_analysis("knem_bcast", machine="zoot")
        assert first.render() == second.render()


@pytest.mark.analyze_schedule
def test_marker_traces_and_checks_a_job(job_factory):
    """One decorator opts a plain coll test into schedule analysis."""
    from repro.analysis.runner import _bcast_program

    job = job_factory("zoot", 4, KNEM_COLL)
    assert job.machine.tracer.enabled  # the plugin forced tracing on
    job.run(_bcast_program, 64 * KiB)
    # teardown runs the checkers; a finding would fail this test
