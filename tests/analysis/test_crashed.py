"""Crashed-rank schedules replayed through the analyzers.

A run that loses a rank and recovers by shrink-and-retry must leave a
trace the checkers consider *degraded but clean*: the crash and the forced
reclaims are visible in the model, yet no race, cookie-lifecycle, or
deadlock finding appears.  And when a survivor genuinely blocks on the
dead peer, the deadlock checker must say so — "peer rank died" — instead
of inventing a wait cycle.
"""

import numpy as np
import pytest

from repro.analysis import build_model
from repro.analysis.deadlock import check_deadlock
from repro.errors import RankFailed
from repro.faults import FaultPlan
from repro.mpi.stacks import KNEM_COLL
from repro.units import KiB
from tests.analysis import fixtures as fx

SIZE = 64 * KiB


def crash_recover_bcast(proc):
    buf = proc.alloc_array(SIZE, "u1")
    if proc.rank == 0:
        buf.array[:] = np.arange(SIZE, dtype=np.uint8) % 251
    comm = proc.comm
    while True:
        try:
            yield from comm.bcast(buf.sim, 0, SIZE, root=0)
            return buf.array.tobytes()
        except RankFailed:
            comm = comm.shrink()


@pytest.mark.analyze_schedule
def test_crashed_rank_schedule_is_degraded_but_clean():
    job, deadlock, error = fx.run_traced(
        "dancer", 8, KNEM_COLL, crash_recover_bcast,
        fault_plan=FaultPlan.crash(core=5, index=0))
    assert deadlock is None and not error
    assert job.world.dead == {5: "bcast"}
    assert job.machine.knem.live_regions == 0
    assert job.machine.shm.slots_outstanding == 0


def test_crash_and_stall_events_reach_the_model():
    job, deadlock, error = fx.run_traced(
        "dancer", 8, KNEM_COLL, crash_recover_bcast,
        fault_plan=FaultPlan.crash(core=3, index=0))
    assert deadlock is None and not error
    model = build_model(job)
    crashes = [e for e in model.rank_events if e.kind == "crash"]
    assert len(crashes) == 1
    assert crashes[0].rank == 3
    assert crashes[0].op == "bcast"
    assert model.dead_ranks == [3]

    job, deadlock, error = fx.run_traced(
        "dancer", 8, KNEM_COLL, crash_recover_bcast,
        fault_plan=FaultPlan.stall(1e-4, core=2, index=0))
    assert deadlock is None and not error
    model = build_model(job)
    stalls = [e for e in model.rank_events if e.kind == "stall"]
    assert len(stalls) == 1
    assert stalls[0].rank == 2
    assert model.dead_ranks == []


def test_blocked_on_dead_peer_is_named_not_a_cycle():
    # rank 1 fail-stops on a timer while rank 0 waits for its message:
    # a genuine hang, but one whose explanation is the death, not a cycle
    def program(proc):
        buf = proc.alloc_array(SIZE, "u1")
        if proc.rank == 0:
            yield from proc.comm.recv(1, buf.sim, 0, SIZE)
        elif proc.rank == 1:
            yield proc.machine.sim.timeout(1.0)  # outlived by the crash
            yield from proc.comm.send(0, buf.sim, 0, SIZE)

    job, deadlock, error = fx.run_traced(
        "dancer", 4, KNEM_COLL, program,
        fault_plan=FaultPlan.crash(core=1, at_time=1e-5))
    assert deadlock is not None
    model = build_model(job, deadlock=deadlock)
    assert model.dead_ranks == [1]
    findings = list(check_deadlock(model))
    assert findings
    text = " ".join(f.render() for f in findings)
    assert "peer rank died (fail-stop)" in text
