"""The symbolic schedule model checker (``repro.analysis.static``)."""

from __future__ import annotations

import pytest

from repro.analysis import ERROR
from repro.analysis.static import (
    extract_model,
    verify_model,
    verify_registry,
    verify_schedule,
)
from repro.coll.algorithms import exported_schedules, get_schedule
from repro.kernel.knem import PROT_READ, PROT_WRITE
from repro.simtime import Simulator
from repro.units import KiB


def _categories(findings):
    return {(f.checker, f.category) for f in findings}


@pytest.fixture(autouse=True)
def _no_simulator_run(monkeypatch):
    """The checker must never execute the discrete-event simulator."""

    def boom(self, *args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("symbolic verification invoked Simulator.run")

    monkeypatch.setattr(Simulator, "run", boom)


class TestRegistry:
    def test_every_component_exports_schedules(self):
        by_component = {}
        for spec in exported_schedules():
            by_component.setdefault(spec.component, []).append(spec.op)
        for component in ("basic", "tuned", "mpich2", "smtree", "knem"):
            assert by_component.get(component), component

    def test_get_schedule_unknown_name(self):
        with pytest.raises(KeyError):
            get_schedule("knem.transmogrify")

    def test_knem_schedules_declare_direction(self):
        assert get_schedule("knem.bcast").direction == "read"
        assert get_schedule("knem.gather").direction == "write"


class TestCleanSchedules:
    @pytest.mark.parametrize("nprocs", [2, 4, 8])
    def test_knem_bcast_clean(self, nprocs):
        result = verify_schedule("knem.bcast", machine="zoot", nprocs=nprocs)
        assert result.clean, [f.render() for f in result.findings]
        assert result.receipts["executions"] >= 1
        assert result.receipts["transitions"] >= result.receipts["steps"] - 1
        assert not result.receipts["bounded"]

    def test_full_registry_clean_on_zoot(self):
        results = verify_registry(machines=("zoot",), sizes=(2, 4, 8))
        dirty = [r for r in results if not r.skipped and not r.clean]
        assert not dirty, [
            (r.name, [f.render() for f in r.findings]) for r in dirty]
        assert len([r for r in results if not r.skipped]) >= 70

    def test_receipts_report_interleaving_bound(self):
        result = verify_schedule("knem.allgather", machine="zoot", nprocs=4)
        assert result.receipts["interleavings_log10"] > 1
        assert result.receipts["regions"] == 2

    def test_oversubscription_is_skipped_with_receipt(self):
        result = verify_schedule("basic.barrier", machine="dancer",
                                 nprocs=16)
        assert result.skipped
        assert "oversubscribe" in result.skipped
        assert result.clean

    def test_variant_runs_apply_tuning_overrides(self):
        base = verify_schedule("knem.gather", machine="zoot", nprocs=4)
        flipped = verify_schedule("knem.gather", machine="zoot", nprocs=4,
                                  variant="root-reads")
        assert base.clean and flipped.clean
        assert base.receipts != flipped.receipts

    def test_multilevel_bcast_on_ig(self):
        result = verify_schedule("knem.bcast", machine="ig", nprocs=16,
                                 variant="multilevel")
        assert result.clean, [f.render() for f in result.findings]


class _OverlapGather:
    """Seeded-bad schedule: every child writes the root window at offset 0."""

    def __init__(self, world):
        self.world = world

    def gather(self, ctx, sendbuf, recvbuf, nbytes, root):
        knem = ctx.machine.knem
        core = ctx.proc.core
        if ctx.rank == root:
            cookie = yield from knem.create_region(
                core, recvbuf, 0, recvbuf.size, PROT_WRITE)
            yield from ctx.send_obj((root + 1) % ctx.size, cookie, phase=1)
            for r in range(ctx.size):
                if r != root:
                    yield from ctx.recv_obj(r, phase=2)
            yield from knem.destroy_region(core, cookie)
        else:
            src = root if ctx.rank == 1 else ctx.rank - 1
            cookie, _st = yield from ctx.recv_obj(src, phase=1)
            if ctx.rank + 1 < ctx.size:
                yield from ctx.send_obj(ctx.rank + 1, cookie, phase=1)
            yield from knem.copy(core, cookie, 0, sendbuf, 0, nbytes,
                                 write=True)
            yield from ctx.send_obj(root, None, phase=2)


class _EarlyDestroyBcast:
    """Seeded-bad schedule: root destroys the cookie without child acks."""

    def __init__(self, world):
        self.world = world

    def bcast(self, ctx, buf, offset, nbytes, root):
        knem = ctx.machine.knem
        core = ctx.proc.core
        if ctx.rank == root:
            cookie = yield from knem.create_region(core, buf, offset,
                                                   nbytes, PROT_READ)
            for r in range(ctx.size):
                if r != root:
                    yield from ctx.send_obj(r, cookie, phase=1)
            yield from ctx.recv_obj(1, phase=2)  # ack from rank 1 only
            yield from knem.destroy_region(core, cookie)
        else:
            cookie, _st = yield from ctx.recv_obj(root, phase=1)
            yield from knem.copy(core, cookie, 0, buf, offset, nbytes,
                                 write=False)
            if ctx.rank == 1:
                yield from ctx.send_obj(root, None, phase=2)


class _CrossRecvBarrier:
    """Seeded-bad schedule: both ranks receive before sending."""

    def __init__(self, world):
        self.world = world

    def barrier(self, ctx):
        peer = 1 - ctx.rank
        buf = ctx.proc.alloc(32 * KiB, label="xchg")
        yield from ctx.recv(peer, buf, 0, 32 * KiB, phase=1)
        yield from ctx.send(peer, buf, 0, 32 * KiB, phase=1)


class TestSeededBadSchedules:
    def test_overlapping_cookie_window_caught(self):
        model = extract_model("basic", "gather", "zoot", 4, nbytes=8 * KiB,
                              coll_factory=_OverlapGather)
        findings, receipts = verify_model(model)
        cats = _categories(findings)
        assert ("schedule", "byte-range-race") in cats
        # the DPOR explorer independently witnesses both orders
        assert ("interleave", "race-witness") in cats
        assert receipts["executions"] > 1  # branching actually happened

    def test_premature_destroy_leaves_window(self):
        model = extract_model("basic", "bcast", "zoot", 3, nbytes=8 * KiB,
                              coll_factory=_EarlyDestroyBcast)
        findings, _receipts = verify_model(model)
        cats = {c for _chk, c in _categories(findings)}
        assert cats & {"use-after-invalidate", "use-after-invalidate-window"}

    def test_cross_recv_deadlock_caught_twice(self):
        model = extract_model("basic", "barrier", "zoot", 2,
                              coll_factory=_CrossRecvBarrier)
        findings, receipts = verify_model(model)
        deadlocks = [f for f in findings
                     if f.category == "deadlock" and f.severity == ERROR]
        checkers = {f.checker for f in deadlocks}
        assert "symcomm" in checkers  # canonical execution wedged
        assert "interleave" in checkers  # ...and the explorer proves it
        assert receipts["deadlocks"] >= 1

    def test_cookie_leak_reported(self):
        class LeakyBcast:
            def __init__(self, world):
                self.world = world

            def bcast(self, ctx, buf, offset, nbytes, root):
                if ctx.rank == root:
                    yield from ctx.machine.knem.create_region(
                        ctx.proc.core, buf, offset, nbytes, PROT_READ)
                yield from ctx.dissemination_barrier()

        model = extract_model("basic", "bcast", "zoot", 2, nbytes=8 * KiB,
                              coll_factory=LeakyBcast)
        findings, _ = verify_model(model)
        assert ("schedule", "cookie-leak") in _categories(findings)

    def test_board_read_without_barrier(self):
        class RacyBoard:
            def __init__(self, world):
                self.world = world

            def barrier(self, ctx):
                if ctx.rank == 0:
                    yield from ctx.board_post(41)
                    yield from ctx.dissemination_barrier(phase_base=900)
                else:
                    ctx.board_get(0)  # before any synchronization
                    yield from ctx.dissemination_barrier(phase_base=900)

        model = extract_model("basic", "barrier", "zoot", 2,
                              coll_factory=RacyBoard)
        findings, _ = verify_model(model)
        cats = _categories(findings)
        assert ("schedule", "board-unsynchronized") in cats \
            or ("symcomm", "extraction-error") in cats

    def test_direction_contract_enforced(self):
        class WritableBcast:
            def __init__(self, world):
                self.world = world

            def bcast(self, ctx, buf, offset, nbytes, root):
                knem = ctx.machine.knem
                core = ctx.proc.core
                if ctx.rank == root:
                    cookie = yield from knem.create_region(
                        core, buf, offset, nbytes,
                        PROT_READ | PROT_WRITE)  # over-permissive
                    for r in range(ctx.size):
                        if r != root:
                            yield from ctx.send_obj(r, cookie, phase=1)
                    for r in range(ctx.size):
                        if r != root:
                            yield from ctx.recv_obj(r, phase=2)
                    yield from knem.destroy_region(core, cookie)
                else:
                    cookie, _st = yield from ctx.recv_obj(root, phase=1)
                    yield from knem.copy(core, cookie, 0, buf, offset,
                                         nbytes, write=False)
                    yield from ctx.send_obj(root, None, phase=2)

        model = extract_model("basic", "bcast", "zoot", 3, nbytes=8 * KiB,
                              coll_factory=WritableBcast)
        findings, _ = verify_model(model, direction="read")
        assert ("schedule", "direction-mismatch") in _categories(findings)
