"""Seeded-buggy programs: each plants exactly the defect one checker hunts.

Every program runs on a traced machine via :func:`run_traced`, which keeps
the job (and its trace) even when the run raises — the checkers are most
interesting on broken runs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import (
    DeadlockError,
    KnemInvalidCookie,
    KnemPermissionError,
    ReproError,
)
from repro.faults.plan import FaultPlan
from repro.kernel.knem import PROT_READ, PROT_WRITE
from repro.mpi.runtime import Job, Machine
from repro.mpi.stacks import KNEM_COLL, Stack
from repro.units import KiB

SIZE = 64 * KiB


def run_traced(machine_name: str, nprocs: int, stack: Stack, program, *args,
               fault_plan: Optional[FaultPlan] = None):
    """Run a program on a traced machine; return (job, deadlock, error)."""
    machine = Machine.build(machine_name, trace=True)
    if fault_plan is not None:
        machine.arm_faults(fault_plan.fork())
    job = Job(machine, nprocs=nprocs, stack=stack)
    deadlock: Optional[DeadlockError] = None
    error = ""
    try:
        job.run(program, *args)
    except DeadlockError as exc:
        deadlock = exc
        error = str(exc)
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    return job, deadlock, error


def use_after_free_program(proc):
    """Rank 0 destroys its region, then tells rank 1 to copy through it."""
    knem = proc.machine.knem
    if proc.rank == 0:
        buf = proc.alloc(SIZE, label="uaf-src")
        cookie = yield from knem.create_region(proc.core, buf, 0, SIZE,
                                               PROT_READ)
        yield from proc.comm.send_obj(1, cookie)
        yield from knem.destroy_region(proc.core, cookie)
        yield from proc.comm.send_obj(1, "go")
    elif proc.rank == 1:
        cookie, _ = yield from proc.comm.recv_obj(0)
        _go, _ = yield from proc.comm.recv_obj(0)
        dst = proc.alloc(SIZE, label="uaf-dst")
        try:
            yield from knem.copy(proc.core, cookie, 0, dst, 0, SIZE,
                                 write=False)
        except KnemInvalidCookie:
            pass  # the driver refused; the trace recorded the attempt
    return proc.now


def wrong_direction_program(proc):
    """Rank 0 exports read-only; rank 1 tries to write through the cookie."""
    knem = proc.machine.knem
    if proc.rank == 0:
        buf = proc.alloc(SIZE, label="dir-exported")
        cookie = yield from knem.create_region(proc.core, buf, 0, SIZE,
                                               PROT_READ)
        yield from proc.comm.send_obj(1, cookie)
        yield from proc.comm.recv_obj(1)
        yield from knem.destroy_region(proc.core, cookie)
    elif proc.rank == 1:
        cookie, _ = yield from proc.comm.recv_obj(0)
        src = proc.alloc(SIZE, label="dir-local")
        try:
            yield from knem.copy(proc.core, cookie, 0, src, 0, SIZE,
                                 write=True)
        except KnemPermissionError:
            pass
        yield from proc.comm.send_obj(0, None)
    return proc.now


def racy_writes_program(proc):
    """Ranks 1 and 2 both sender-write the full region, unsynchronized."""
    knem = proc.machine.knem
    if proc.rank == 0:
        buf = proc.alloc(SIZE, label="race-target")
        cookie = yield from knem.create_region(proc.core, buf, 0, SIZE,
                                               PROT_WRITE)
        yield from proc.comm.send_obj(1, cookie)
        yield from proc.comm.send_obj(2, cookie)
        yield from proc.comm.recv_obj(1)
        yield from proc.comm.recv_obj(2)
        yield from knem.destroy_region(proc.core, cookie)
    elif proc.rank in (1, 2):
        cookie, _ = yield from proc.comm.recv_obj(0)
        src = proc.alloc(SIZE, label=f"race-src-{proc.rank}")
        yield from knem.copy(proc.core, cookie, 0, src, 0, SIZE, write=True)
        yield from proc.comm.send_obj(0, None)
    return proc.now


def send_send_deadlock_program(proc):
    """The classic: two ranks blocking-send to each other, nobody receives."""
    peer = 1 - proc.rank
    buf = proc.alloc(SIZE, label=f"dl-send-{proc.rank}")
    yield from proc.comm.send(peer, buf)
    return proc.now


def oob_cookie_program(proc, side: dict):
    """Rank 1 learns the cookie through a side channel, with no HB edge."""
    knem = proc.machine.knem
    if proc.rank == 0:
        buf = proc.alloc(SIZE, label="oob-exported")
        cookie = yield from knem.create_region(proc.core, buf, 0, SIZE,
                                               PROT_READ)
        side["cookie"] = cookie
        yield proc.compute(1e-2)  # stay registered while rank 1 copies
    elif proc.rank == 1:
        yield proc.compute(1e-3)  # rank 0 has registered by now — but no
        dst = proc.alloc(SIZE, label="oob-dst")  # traced edge says so
        yield from knem.copy(proc.core, side["cookie"], 0, dst, 0, SIZE,
                             write=False)
    return proc.now


def overlapping_registration_program(proc):
    """One rank registers two live regions over the same bytes."""
    knem = proc.machine.knem
    buf = proc.alloc(SIZE, label="overlap")
    first = yield from knem.create_region(proc.core, buf, 0, SIZE, PROT_READ)
    second = yield from knem.create_region(proc.core, buf, SIZE // 2,
                                           SIZE // 2, PROT_READ)
    yield from knem.destroy_region(proc.core, second)
    yield from knem.destroy_region(proc.core, first)
    return proc.now


def degraded_bcast_program(proc):
    """A clean broadcast — run it under a fault plan to get a degraded trace."""
    buf = proc.alloc_array(SIZE, "u1")
    if proc.rank == 0:
        buf.array[:] = np.arange(SIZE, dtype=np.uint32).astype(np.uint8)
    yield from proc.comm.bcast(buf.sim, 0, SIZE, root=0)
    return buf.array.tobytes()


def degraded_exchange_program(proc):
    """Gatherv + alltoallv back to back (all blocks beyond the threshold)."""
    size = proc.comm.size
    counts = [SIZE // 2 + 256 * r for r in range(size)]
    displs = list(np.cumsum([0] + counts[:-1]))
    send = proc.alloc_array(counts[proc.rank], "u1")
    send.array[:] = proc.rank + 1
    recv = proc.alloc_array(sum(counts), "u1") if proc.rank == 0 else None
    yield from proc.comm.gatherv(send.sim, recv.sim if recv else None,
                                 counts, displs, root=0)
    a2a_counts = [24 * KiB] * size
    a2a_displs = [24 * KiB * r for r in range(size)]
    sbuf = proc.alloc_array(24 * KiB * size, "u1")
    rbuf = proc.alloc_array(24 * KiB * size, "u1")
    sbuf.array[:] = proc.rank + 1
    yield from proc.comm.alltoallv(sbuf.sim, a2a_counts, a2a_displs,
                                   rbuf.sim, a2a_counts, a2a_displs)
    return rbuf.array.tobytes()


def alltoallv_mismatch_program(proc):
    """Inconsistent count matrices: the collective must abort, not leak.

    Rank 1 believes rank 0 sends it half of what rank 0 actually sends, so
    the exchange raises mid-collective while every rank still holds a
    registered send region — the regression fixture for the abort-path
    cookie reclaim.
    """
    size = proc.comm.size
    count = 32 * KiB
    send_counts = [count] * size
    recv_counts = [count] * size
    if proc.rank == 1:
        recv_counts[0] = count // 2
    displs = [count * r for r in range(size)]
    recv_displs = list(np.cumsum([0] + recv_counts[:-1]))
    send = proc.alloc_array(count * size, "u1")
    recv = proc.alloc_array(sum(recv_counts), "u1")
    yield from proc.comm.alltoallv(send.sim, send_counts, displs,
                                   recv.sim, recv_counts, recv_displs)
    return proc.now


ABLATION_ROOT_READS = KNEM_COLL.with_tuning(name="KNEM-RootReads",
                                            gather_direction_write=False)

