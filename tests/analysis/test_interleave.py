"""The sleep-set/DPOR interleaving explorer in isolation."""

from __future__ import annotations

import math

from repro.analysis.static import (
    Access,
    Op,
    accesses_conflict,
    explore_ops,
    interleaving_log10,
    intervals_overlap,
)


def _chan(src, dst):
    return (src, dst, "t")


def _send(rank, dst, idx=0, gid=-1):
    return Op(rank=rank, kind="send", chan=_chan(rank, dst), idx=idx,
              gid=gid)


def _recv(rank, src, idx=0, gid=-1):
    return Op(rank=rank, kind="recv", chan=_chan(src, rank), idx=idx,
              gid=gid)


def _wait(rank, src, idx=0):
    return Op(rank=rank, kind="wait_recv", chan=_chan(src, rank), idx=idx)


def _write(rank, space, start, end, gid):
    return Op(rank=rank, kind="local", gid=gid,
              accesses=(Access(space, start, end, True),))


class TestIntervals:
    def test_overlap(self):
        assert intervals_overlap(0, 10, 5, 15)
        assert not intervals_overlap(0, 10, 10, 20)
        assert not intervals_overlap(0, 0, 0, 10)  # empty range

    def test_conflict_needs_writer(self):
        r = (Access("b", 0, 8, False),)
        w = (Access("b", 4, 12, True),)
        assert accesses_conflict(r, w)
        assert not accesses_conflict(r, r)
        assert not accesses_conflict(w, (Access("c", 0, 100, True),))


class TestInterleavingCount:
    def test_multinomial(self):
        # 2 ranks x 2 ops each: 4!/(2!2!) = 6 interleavings
        assert math.isclose(interleaving_log10([2, 2]), math.log10(6))

    def test_empty(self):
        assert interleaving_log10([]) == 0.0


class TestExplorer:
    def test_ping_pong_single_execution(self):
        ops = [
            [_send(0, 1), _recv(0, 1), _wait(0, 1)],
            [_recv(1, 0), _wait(1, 0), _send(1, 0)],
        ]
        result = explore_ops(ops)
        assert result.clean
        assert result.receipts["executions"] == 1
        assert result.receipts["deadlocks"] == 0

    def test_cross_wait_deadlock(self):
        ops = [
            [_recv(0, 1), _wait(0, 1), _send(0, 1)],
            [_recv(1, 0), _wait(1, 0), _send(1, 0)],
        ]
        result = explore_ops(ops)
        assert not result.clean
        assert any(f.category == "deadlock" for f in result.findings)
        assert result.receipts["deadlocks"] >= 1

    def test_conditional_deadlock_found_despite_clean_canonical_order(self):
        # rank 0's send happens first in program order, so the canonical
        # (round-robin from rank 0) execution completes — but the
        # interleaving where rank 1 waits first and rank 0 also waits is
        # NOT possible here; instead build a 3-rank cycle reachable only
        # in a non-canonical order
        ops = [
            [_send(0, 1), _recv(0, 2), _wait(0, 2)],
            [_recv(1, 0), _wait(1, 0), _send(1, 2)],
            [_recv(2, 1), _wait(2, 1), _send(2, 0)],
        ]
        result = explore_ops(ops)
        # every execution completes: the chain 0->1->2->0 always drains
        assert result.clean
        assert result.receipts["executions"] >= 1

    def test_concurrent_writes_witnessed(self):
        ops = [
            [_write(0, "buf", 0, 8, gid=1)],
            [_write(1, "buf", 4, 12, gid=2)],
        ]
        result = explore_ops(ops)
        assert any(f.category == "race-witness" for f in result.findings)
        assert result.receipts["executions"] == 2  # both orders explored

    def test_disjoint_writes_single_pass(self):
        ops = [
            [_write(0, "buf", 0, 8, gid=1)],
            [_write(1, "buf", 8, 16, gid=2)],
        ]
        result = explore_ops(ops)
        assert result.clean
        assert result.receipts["executions"] == 1
        assert result.receipts["branch_states"] == 0

    def test_copy_after_destroy_reachable(self):
        copy = Op(rank=0, kind="local", cookie_verb="copy", cookie=7, gid=1)
        destroy = Op(rank=1, kind="local", cookie_verb="destroy", cookie=7,
                     gid=2)
        register = Op(rank=1, kind="local", cookie_verb="register", cookie=7,
                      gid=0)
        result = explore_ops([[copy], [register, destroy]])
        assert any(f.category == "cookie-order" for f in result.findings)

    def test_hb_prunes_ordered_conflicts(self):
        # same conflicting writes, but hb() says they are ordered: the
        # exploration must stay linear and witness nothing
        ops = [
            [_write(0, "buf", 0, 8, gid=1)],
            [_write(1, "buf", 4, 12, gid=2)],
        ]
        result = explore_ops(ops, hb=lambda a, b: True)
        assert result.clean
        assert result.receipts["executions"] == 1

    def test_transition_budget_reported(self):
        ops = [
            [_write(r, "buf", 0, 8, gid=10 * r + i) for i in range(4)]
            for r in range(3)
        ]
        result = explore_ops(ops, max_transitions=20)
        assert result.receipts["bounded"]
        assert any(f.category == "exploration-bounded"
                   for f in result.findings)
