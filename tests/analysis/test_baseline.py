"""Stable finding ids and the suppression baseline."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, Finding, finding_id
from repro.analysis.cli import main


def _finding(**overrides):
    base = dict(checker="lint", category="wall-clock-time", severity="error",
                message="src/repro/x.py:3: wall-clock call time.time()")
    base.update(overrides)
    return Finding(**base)


class TestFindingId:
    def test_deterministic(self):
        assert _finding().fid == _finding().fid
        assert len(_finding().fid) == 12
        int(_finding().fid, 16)  # hex

    def test_identity_fields_change_id(self):
        assert _finding().fid != _finding(category="other").fid
        assert _finding().fid != _finding(message="different").fid
        assert _finding().fid != _finding(rank=3).fid

    def test_details_do_not_change_id(self):
        assert _finding().fid == _finding(details={"extra": 1}).fid
        assert finding_id(_finding()) == _finding().fid


class TestBaseline:
    def test_load_and_partition(self, tmp_path):
        f1, f2 = _finding(), _finding(message="other issue")
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "suppress": [{"id": f1.fid, "reason": "known quirk"}],
        }))
        baseline = Baseline.load(path)
        active, quiet = baseline.partition([f1, f2])
        assert active == [f2]
        assert quiet == [f1]

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "suppress": []}')
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_shipped_baseline_is_empty(self):
        from pathlib import Path
        repo = Path(__file__).resolve().parents[2]
        baseline = Baseline.load(repo / "analysis-baseline.json")
        assert baseline.suppress == {}


class TestCliBaseline:
    def test_suppressed_findings_do_not_fail(self, tmp_path, capsys,
                                             monkeypatch):
        from repro.analysis.static import lint as lint_mod

        bad = "import time\n\ndef f():\n    return time.time()\n"
        src = tmp_path / "mod.py"
        src.write_text(bad)
        findings = lint_mod.lint_paths([src])
        assert findings
        monkeypatch.setattr(lint_mod, "_default_paths", lambda: [src])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "suppress": [{"id": f.fid, "reason": "test"} for f in findings],
        }))
        assert main(["--lint"]) == 2
        capsys.readouterr()
        assert main(["--lint", "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "SUPPRESSED" in out

    def test_json_format_carries_ids_and_exit(self, tmp_path, capsys,
                                              monkeypatch):
        from repro.analysis.static import lint as lint_mod

        src = tmp_path / "mod.py"
        src.write_text("import time\n\ndef f():\n    return time.time()\n")
        monkeypatch.setattr(lint_mod, "_default_paths", lambda: [src])
        code = main(["--lint", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 2
        assert payload["exit"] == 2
        assert payload["mode"] == "lint"
        assert payload["findings"][0]["category"] == "wall-clock-time"
        assert len(payload["findings"][0]["id"]) == 12
