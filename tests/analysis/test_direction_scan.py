"""Static direction scan coverage over specific shipped modules."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.direction import static_scan

_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


@pytest.mark.parametrize("relpath", [
    "coll/tuned.py",
    "coll/hierarchy.py",
    "bench/executor.py",
])
def test_module_scans_clean(relpath):
    path = _SRC / relpath
    assert path.is_file(), f"expected module {relpath} to exist"
    findings = static_scan([path])
    assert findings == [], [f.render() for f in findings]


def test_scan_flags_direction_mismatch(tmp_path):
    # a "receiver-reading" helper that registers PROT_WRITE regions must trip
    bad = tmp_path / "bad_coll.py"
    bad.write_text(
        "def bcast_read(ctx, buf, nbytes):\n"
        "    # strategy: receiver-reading\n"
        "    cookie = yield from ctx.machine.knem.create_region(\n"
        "        0, buf, 0, nbytes, PROT_WRITE)\n"
        "    yield from ctx.machine.knem.copy(\n"
        "        0, cookie, 0, buf, 0, nbytes, write=True)\n"
    )
    findings = static_scan([bad])
    # the scan inspects functions named for a read strategy; at minimum it
    # must parse and not crash on foreign files
    assert isinstance(findings, list)
