"""The KNEM-San runtime sanitizer (shadow memory over the live drivers)."""

from __future__ import annotations

import pytest

from repro.analysis.static import KnemSanitizer, SingleCopySanitizer
from repro.errors import KnemInvalidCookie
from repro.hardware.machines import dancer
from repro.hardware.memory import MemorySystem
from repro.kernel.knem import PROT_READ, PROT_WRITE, KnemDriver
from repro.mpi.runtime import Machine
from repro.simtime import Simulator


@pytest.fixture
def world():
    sim = Simulator()
    mem = MemorySystem(sim, dancer())
    knem = KnemDriver(sim, mem)
    return sim, mem, knem


def _armed(knem) -> KnemSanitizer:
    sanitizer = KnemSanitizer()
    knem.sanitizer = sanitizer
    return sanitizer


def _run(sim, gen):
    p = sim.process(gen)
    sim.run()
    return p.value


def _categories(findings):
    return {f.category for f in findings}


class TestKnemSanitizer:
    def test_clean_single_copy_bcast_pattern(self, world):
        sim, mem, knem = world
        sanitizer = _armed(knem)
        src = mem.alloc(64 * 1024, 0)
        dst1 = mem.alloc(64 * 1024, 0)
        dst2 = mem.alloc(64 * 1024, 1)

        def body():
            cookie = yield from knem.create_region(0, src, 0, src.size,
                                                   PROT_READ)
            yield from knem.copy(1, cookie, 0, dst1, 0, src.size,
                                 write=False)
            yield from knem.copy(2, cookie, 0, dst2, 0, src.size,
                                 write=False)
            yield from knem.destroy_region(0, cookie)

        _run(sim, body())
        assert sanitizer.findings == []

    def test_overlapping_writer_windows_flagged(self, world):
        sim, mem, knem = world
        sanitizer = _armed(knem)
        gather = mem.alloc(64 * 1024, 0)
        src1 = mem.alloc(32 * 1024, 0)
        src2 = mem.alloc(32 * 1024, 1)

        def writer(core, local):
            # both cores write [0, 32K) of the same region, concurrently
            yield from knem.copy(core, self_cookie[0], 0, local, 0,
                                 local.size, write=True)

        self_cookie = [None]

        def body():
            cookie = yield from knem.create_region(0, gather, 0, gather.size,
                                                   PROT_WRITE)
            self_cookie[0] = cookie
            p1 = sim.process(writer(1, src1))
            p2 = sim.process(writer(2, src2))
            yield p1
            yield p2
            yield from knem.destroy_region(0, cookie)

        _run(sim, body())
        assert "concurrent-overlap" in _categories(sanitizer.findings)
        overlap = [f for f in sanitizer.findings
                   if f.category == "concurrent-overlap"]
        assert overlap[0].checker == "knemsan"
        # the finding names both offending schedule steps
        assert "step" in overlap[0].message

    def test_disjoint_concurrent_windows_clean(self, world):
        sim, mem, knem = world
        sanitizer = _armed(knem)
        gather = mem.alloc(64 * 1024, 0)
        src1 = mem.alloc(32 * 1024, 0)
        src2 = mem.alloc(32 * 1024, 1)
        cookie_box = [None]

        def writer(core, local, region_off):
            yield from knem.copy(core, cookie_box[0], region_off, local, 0,
                                 local.size, write=True)

        def body():
            cookie = yield from knem.create_region(0, gather, 0, gather.size,
                                                   PROT_WRITE)
            cookie_box[0] = cookie
            p1 = sim.process(writer(1, src1, 0))
            p2 = sim.process(writer(2, src2, 32 * 1024))
            yield p1
            yield p2
            yield from knem.destroy_region(0, cookie)

        _run(sim, body())
        assert sanitizer.findings == []

    def test_destroy_with_copy_in_flight(self, world):
        sim, mem, knem = world
        sanitizer = _armed(knem)
        src = mem.alloc(64 * 1024, 0)
        dst = mem.alloc(64 * 1024, 1)
        cookie_box = [None]

        def copier():
            yield from knem.copy(1, cookie_box[0], 0, dst, 0, dst.size,
                                 write=False)

        def body():
            cookie = yield from knem.create_region(0, src, 0, src.size,
                                                   PROT_READ)
            cookie_box[0] = cookie
            sim.process(copier())
            # destroy immediately: the copy transfer is still in flight
            yield sim.timeout(1e-7)
            knem.reclaim(0, cookie)

        _run(sim, body())
        assert "destroy-during-copy" in _categories(sanitizer.findings)

    def test_driver_rejections_become_findings(self, world):
        sim, mem, knem = world
        sanitizer = _armed(knem)
        src = mem.alloc(4096, 0)
        dst = mem.alloc(4096, 1)

        def body():
            cookie = yield from knem.create_region(0, src, 0, src.size,
                                                   PROT_READ)
            yield from knem.destroy_region(0, cookie)
            try:
                yield from knem.copy(1, cookie, 0, dst, 0, 64, write=False)
            except KnemInvalidCookie:
                pass

        _run(sim, body())
        assert "use-after-invalidate" in _categories(sanitizer.findings)


class TestFifoSanitizer:
    def _fifo(self):
        machine = Machine.build("dancer")
        sanitizer = SingleCopySanitizer()
        machine.arm_sanitizer(sanitizer)
        fifo = machine.shm.fifo(0, 1)
        return machine, sanitizer, fifo

    def test_fifo_gets_sanitizer_when_armed(self):
        machine, sanitizer, fifo = self._fifo()
        assert fifo.sanitizer is sanitizer.fifo

    def test_double_publish_flagged(self):
        _machine, sanitizer, fifo = self._fifo()
        fifo.sanitizer.note_acquire(fifo, 0)
        fifo.publish(0, 128)
        fifo.publish(0, 128)
        assert "double-publish" in _categories(sanitizer.findings)

    def test_fragment_overflow_flagged(self):
        _machine, sanitizer, fifo = self._fifo()
        fifo.sanitizer.note_acquire(fifo, 0)
        fifo.publish(0, fifo.fragment_size + 1)
        assert "fragment-overflow" in _categories(sanitizer.findings)

    def test_release_unpublished_flagged(self):
        _machine, sanitizer, fifo = self._fifo()
        fifo.release_slot(0)
        assert "release-unpublished" in _categories(sanitizer.findings)

    def test_normal_protocol_clean(self):
        _machine, sanitizer, fifo = self._fifo()
        san = fifo.sanitizer
        san.note_acquire(fifo, 0)
        fifo.publish(0, 64)
        fifo.release_slot(0)
        san.note_acquire(fifo, 0)
        assert sanitizer.clean


class TestZeroCostDisabled:
    def test_machines_start_with_no_sanitizer(self):
        machine = Machine.build("zoot")
        assert machine.sanitizer is None
        assert machine.knem.sanitizer is None
        assert machine.shm.sanitizer is None
        fifo = machine.shm.fifo(0, 1)
        assert fifo.sanitizer is None

    def test_disarm_resets_hooks(self):
        machine = Machine.build("zoot")
        fifo = machine.shm.fifo(0, 1)
        machine.arm_sanitizer(SingleCopySanitizer())
        assert fifo.sanitizer is not None
        machine.arm_sanitizer(None)
        assert machine.knem.sanitizer is None
        assert fifo.sanitizer is None
