"""The ``python -m repro.analysis`` entry point."""

import pytest

from repro.analysis import ALGOS, AlgoSpec, DirectionSpec
from repro.analysis.cli import _parse_size, main
from repro.units import KiB, MiB


class TestParseSize:
    @pytest.mark.parametrize("text,want", [
        ("65536", 65536),
        ("64K", 64 * KiB),
        ("64KiB", 64 * KiB),
        ("64kb", 64 * KiB),
        ("1M", 1 * MiB),
        ("2MiB", 2 * MiB),
    ])
    def test_accepted(self, text, want):
        assert _parse_size(text) == want

    def test_rejected(self):
        with pytest.raises(Exception):
            _parse_size("lots")


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "knem_bcast" in out
        assert "race" in out and "deadlock" in out

    def test_clean_algo_exits_zero(self, capsys):
        code = main(["--algo", "knem_bcast", "--machine", "zoot",
                     "--nprocs", "4", "--size", "32K"])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean: no findings" in out

    def test_checker_subset(self, capsys):
        code = main(["--algo", "knem_gather", "--nprocs", "4",
                     "--size", "32K", "--checkers", "race,cookie"])
        assert code == 0

    def test_static_scan_of_shipped_sources_is_clean(self, capsys):
        assert main(["--static"]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_findings_exit_two(self, capsys, monkeypatch):
        """A schedule whose declared direction contradicts its copies must
        drive the exit status to 2."""
        real = ALGOS["knem_gather"]
        buggy = AlgoSpec(name=real.name, stack=real.stack,
                         program=real.program,
                         direction=DirectionSpec("read", concurrent=True),
                         nbytes=real.nbytes, description=real.description)
        monkeypatch.setitem(ALGOS, "knem_gather", buggy)
        code = main(["--algo", "knem_gather", "--machine", "zoot",
                     "--nprocs", "4"])
        out = capsys.readouterr().out
        assert code == 2
        assert "direction-mismatch" in out

    def test_unknown_algo_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["--algo", "nope"])
        assert exc.value.code == 2  # argparse usage error


class TestVerifyCli:
    def test_verify_one_schedule_clean(self, capsys):
        code = main(["--verify", "knem.bcast", "--machine", "zoot",
                     "--nprocs", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "knem.bcast@zootx4" in out
        assert "interleavings" in out

    def test_verify_json_carries_receipts(self, capsys):
        import json as _json
        code = main(["--verify", "knem.gather", "--machine", "zoot",
                     "--nprocs", "4", "--format", "json"])
        payload = _json.loads(capsys.readouterr().out)
        assert code == 0
        results = payload["results"]
        assert results and all(r["clean"] for r in results)
        assert results[0]["receipts"]["executions"] >= 1
        assert "interleavings_log10" in results[0]["receipts"]

    def test_verify_unknown_schedule_fails(self, capsys):
        assert main(["--verify", "knem.nope", "--nprocs", "2"]) == 2

    def test_verify_machine_all_sweeps_and_skips(self, capsys):
        code = main(["--verify", "smtree.gather", "--machine", "all"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SKIP" in out  # dancer x16 oversubscribed

    def test_machine_all_rejected_for_trace_mode(self):
        with pytest.raises(SystemExit):
            main(["--algo", "knem_bcast", "--machine", "all"])

    def test_lint_mode_clean_on_shipped_sources(self, capsys):
        assert main(["--lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out
