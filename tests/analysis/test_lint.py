"""The repro-specific AST lint rules."""

from __future__ import annotations

import subprocess
import textwrap

from repro.analysis.static import (lint_paths, lint_source,
                                   lint_tracked_bytecode)


def _lint(code: str, path: str = "src/repro/fake/mod.py"):
    return lint_source(textwrap.dedent(code), path=path)


def _categories(findings):
    return {f.category for f in findings}


class TestWallClock:
    def test_time_time_flagged(self):
        findings = _lint("""
            import time
            def f():
                return time.perf_counter()
        """)
        assert _categories(findings) == {"wall-clock-time"}

    def test_from_import_flagged(self):
        findings = _lint("""
            from time import monotonic
            def f():
                return monotonic()
        """)
        assert _categories(findings) == {"wall-clock-time"}

    def test_datetime_now_flagged(self):
        findings = _lint("""
            import datetime
            def f():
                return datetime.datetime.now()
        """)
        assert _categories(findings) == {"wall-clock-time"}

    def test_bench_files_exempt(self):
        findings = _lint("""
            import time
            def f():
                return time.perf_counter()
        """, path="src/repro/bench/harness.py")
        assert findings == []

    def test_sim_clock_not_flagged(self):
        findings = _lint("""
            def f(sim):
                return sim.now
        """)
        assert findings == []


class TestRandomness:
    def test_module_level_random_flagged(self):
        findings = _lint("""
            import random
            def f():
                return random.random()
        """)
        assert _categories(findings) == {"unseeded-randomness"}

    def test_numpy_global_rng_flagged(self):
        findings = _lint("""
            import numpy as np
            def f():
                return np.random.randint(10)
        """)
        assert _categories(findings) == {"unseeded-randomness"}

    def test_seeded_instances_allowed(self):
        findings = _lint("""
            import random
            import numpy as np
            def f(seed):
                rng = random.Random(seed)
                gen = np.random.default_rng(seed)
                return rng.random() + gen.integers(10)
        """)
        assert findings == []


class TestTraceEmit:
    def test_bare_emit_flagged(self):
        findings = _lint("""
            def f(self):
                self.tracer.emit("x.y", a=1)
        """)
        assert _categories(findings) == {"unguarded-trace-emit"}

    def test_guarded_emit_allowed(self):
        findings = _lint("""
            def f(self):
                tr = self.tracer
                if tr.enabled:
                    tr.emit("x.y", a=1)
                else:
                    tr.tick("x.y")
        """)
        assert findings == []

    def test_injected_emit_exempt(self):
        findings = _lint("""
            def f(self):
                self.tracer.emit("x.fail", injected=True)
        """)
        assert findings == []

    def test_emit_before_raise_exempt(self):
        findings = _lint("""
            def f(self):
                self.tracer.emit("x.fail", error="Boom")
                raise RuntimeError("boom")
        """)
        assert findings == []


class TestCookieRelease:
    def test_unprotected_binding_flagged(self):
        findings = _lint("""
            def run(self, core, buf, n):
                cookie = yield from knem.create_region(core, buf, 0, n, 1)
                yield from knem.copy(core, cookie, 0, buf, 0, n, False)
        """)
        assert _categories(findings) == {"unreleased-cookie-path"}

    def test_finally_release_allowed(self):
        findings = _lint("""
            def run(self, core, buf, n):
                cookie = yield from knem.create_region(core, buf, 0, n, 1)
                try:
                    yield from knem.copy(core, cookie, 0, buf, 0, n, False)
                finally:
                    yield from self._release(core, cookie)
        """)
        assert findings == []

    def test_returning_cookie_allowed(self):
        findings = _lint("""
            def acquire(self, core, buf, n):
                cookie = yield from self._register_or_degrade(core, buf, 0, n, 1)
                return cookie
        """)
        assert findings == []


class TestShippedSources:
    def test_src_repro_is_lint_clean(self):
        assert lint_paths() == []

    def test_syntax_errors_are_findings(self):
        findings = lint_source("def broken(:\n", path="x.py")
        assert _categories(findings) == {"syntax-error"}


class TestTrackedBytecode:
    def _git(self, *args, cwd):
        subprocess.run(["git", *args], cwd=cwd, check=True,
                       capture_output=True,
                       env={"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                            "GIT_COMMITTER_NAME": "t",
                            "GIT_COMMITTER_EMAIL": "t@t",
                            "HOME": str(cwd), "PATH": "/usr/bin:/bin"})

    def test_tracked_pyc_is_flagged(self, tmp_path):
        self._git("init", "-q", cwd=tmp_path)
        pyc = tmp_path / "__pycache__" / "mod.cpython-311.pyc"
        pyc.parent.mkdir()
        pyc.write_bytes(b"\x00bytecode")
        (tmp_path / "ok.py").write_text("x = 1\n")
        self._git("add", "-f", ".", cwd=tmp_path)
        findings = lint_tracked_bytecode(tmp_path)
        assert _categories(findings) == {"tracked-bytecode"}
        assert any("mod.cpython-311.pyc" in f.message for f in findings)

    def test_clean_repo_passes(self, tmp_path):
        self._git("init", "-q", cwd=tmp_path)
        (tmp_path / "ok.py").write_text("x = 1\n")
        self._git("add", ".", cwd=tmp_path)
        assert lint_tracked_bytecode(tmp_path) == []

    def test_outside_a_checkout_is_vacuously_clean(self, tmp_path):
        assert lint_tracked_bytecode(tmp_path) == []

    def test_this_repository_tracks_no_bytecode(self):
        assert lint_tracked_bytecode() == []
