"""Degraded-run schedules replayed through the analyzers.

A run that survives injected KNEM faults by degrading must leave a trace
the checkers consider clean: every registered region closed (forced
reclaims count), no races introduced by the resend paths, no deadlock.
The abort regression at the bottom pins the alltoallv cookie-leak fix.
"""

import pytest

from repro.analysis import build_model, run_checkers
from repro.faults import FaultPlan, FaultRule
from repro.mpi.runtime import Job, Machine
from repro.mpi.stacks import KNEM_COLL, KNEM_COLL_STRICT, TUNED_KNEM
from tests.analysis import fixtures as fx


def run_armed(machine_name, nprocs, stack, plan, program):
    machine = Machine.build(machine_name)
    machine.arm_faults(plan.fork())
    job = Job(machine, nprocs=nprocs, stack=stack)
    res = job.run(program)
    return machine, res


@pytest.mark.analyze_schedule
def test_total_outage_schedule_is_clean():
    machine, _ = run_armed("zoot", 8, KNEM_COLL,
                           FaultPlan.all_fail(sticky=True),
                           fx.degraded_bcast_program)
    assert machine.knem.health.total_failures > 0
    assert machine.knem.live_regions == 0


@pytest.mark.analyze_schedule
def test_transient_fault_schedule_is_clean():
    plan = FaultPlan([FaultRule(op="copy", index=0),
                      FaultRule(op="copy", index=1),
                      FaultRule(op="destroy", index=0)])
    machine, _ = run_armed("dancer", 8, KNEM_COLL, plan,
                           fx.degraded_exchange_program)
    assert machine.knem.stats_injected_faults > 0
    assert machine.knem.live_regions == 0


@pytest.mark.analyze_schedule
def test_disqualified_job_schedule_is_clean():
    machine, _ = run_armed("dancer", 8, KNEM_COLL_STRICT,
                           FaultPlan.all_fail(("copy",), sticky=True),
                           fx.degraded_exchange_program)
    assert machine.knem.health.disqualified
    assert machine.knem.live_regions == 0


@pytest.mark.analyze_schedule
def test_pml_retransmit_schedule_is_clean():
    # the exchange program sends disjoint ranges per peer — unlike the
    # tuned bcast tree, whose concurrent same-segment sends already trip
    # the overlap checker on healthy runs
    machine, _ = run_armed("dancer", 8, TUNED_KNEM,
                           FaultPlan.all_fail(("copy",), sticky=True),
                           fx.degraded_exchange_program)
    assert machine.knem.live_regions == 0


def test_degrade_events_reach_the_model():
    job, deadlock, error = fx.run_traced(
        "dancer", 8, KNEM_COLL_STRICT, fx.degraded_bcast_program,
        fault_plan=FaultPlan.all_fail(sticky=True))
    assert not error and deadlock is None
    model = build_model(job, deadlock=deadlock)
    assert model.health_events
    kinds = {e.kind for e in model.health_events}
    assert "degrade" in kinds
    assert any(e.disqualified for e in model.health_events)
    assert all(e.op for e in model.health_events if e.kind == "degrade")


def test_requalify_events_reach_the_model():
    plan = FaultPlan([FaultRule(op="register", index=0),
                      FaultRule(op="register", index=1)])
    job, deadlock, error = fx.run_traced(
        "dancer", 8, KNEM_COLL, fx.degraded_bcast_program, fault_plan=plan)
    assert not error and deadlock is None
    model = build_model(job, deadlock=deadlock)
    assert any(e.kind == "requalify" for e in model.health_events)


def test_mismatch_abort_reclaims_every_region():
    """Regression: aborting alltoallv used to leak its registered regions."""
    job, deadlock, error = fx.run_traced(
        "dancer", 8, KNEM_COLL, fx.alltoallv_mismatch_program)
    assert deadlock is None
    assert "CollectiveError" in error and "count mismatch" in error
    assert job.machine.knem.live_regions == 0
    assert job.machine.knem.stats_reclaims > 0
    model = build_model(job, deadlock=deadlock)
    findings = run_checkers(model, ["cookie"])
    assert "leaked-region" not in {f.category for f in findings}
