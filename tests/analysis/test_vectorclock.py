"""Vector-clock algebra: the happens-before primitive under everything."""

from repro.analysis import VectorClock


class TestVectorClock:
    def test_tick_advances_own_component(self):
        vc = VectorClock(3)
        vc.tick(1)
        vc.tick(1)
        assert vc.c == [0, 2, 0]

    def test_copy_is_independent(self):
        vc = VectorClock(2)
        snap = vc.copy()
        vc.tick(0)
        assert snap.c == [0, 0]
        assert vc.c == [1, 0]

    def test_join_is_componentwise_max(self):
        a = VectorClock(3, [5, 0, 2])
        b = VectorClock(3, [1, 4, 2])
        a.join(b)
        assert a.c == [5, 4, 2]
        assert b.c == [1, 4, 2]  # join mutates only the receiver

    def test_leq(self):
        assert VectorClock(2, [1, 2]).leq(VectorClock(2, [1, 3]))
        assert not VectorClock(2, [2, 2]).leq(VectorClock(2, [1, 3]))

    def test_ordered_message_edge(self):
        # rank 0 ticks, sends; rank 1 joins the snapshot then ticks.
        sender = VectorClock(2)
        sender.tick(0)
        snap = sender.copy()
        receiver = VectorClock(2)
        receiver.tick(1)
        receiver.join(snap)
        receiver.tick(1)
        after_recv = receiver.copy()
        assert VectorClock.ordered(snap, 0, after_recv, 1)
        assert VectorClock.ordered(after_recv, 1, snap, 0)  # symmetric test

    def test_concurrent_snapshots_are_unordered(self):
        a = VectorClock(2)
        a.tick(0)
        b = VectorClock(2)
        b.tick(1)
        assert not VectorClock.ordered(a.copy(), 0, b.copy(), 1)

    def test_same_rank_always_ordered(self):
        early = VectorClock(2, [1, 0])
        late = VectorClock(2, [7, 3])
        assert VectorClock.ordered(late, 0, early, 0)
