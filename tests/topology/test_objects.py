"""Topology tree construction and queries."""

import pytest

from repro.errors import HardwareConfigError
from repro.hardware.machines import dancer, ig, zoot
from repro.topology.objects import Topology, TopologyObject


class TestTree:
    def test_zoot_tree_shape(self):
        topo = Topology(zoot())
        assert topo.root.type == "machine"
        assert len(topo.objects("board")) == 1
        assert len(topo.objects("socket")) == 4
        assert len(topo.objects("cache")) == 8   # L2 per pair
        assert len(topo.objects("core")) == 16

    def test_ig_tree_shape(self):
        topo = Topology(ig())
        assert len(topo.objects("board")) == 2
        assert len(topo.objects("socket")) == 8
        assert len(topo.objects("cache")) == 8   # one L3 per socket
        assert len(topo.objects("core")) == 48

    def test_core_lookup(self):
        topo = Topology(dancer())
        core = topo.core(5)
        assert core.type == "core"
        assert core.index == 5
        assert core.attrs["domain"] == 1

    def test_core_out_of_range(self):
        with pytest.raises(HardwareConfigError):
            Topology(dancer()).core(8)

    def test_cpusets_partition_at_each_depth(self):
        topo = Topology(ig())
        for obj_type in ("board", "socket", "cache"):
            cores = []
            for obj in topo.objects(obj_type):
                cores.extend(obj.cpuset)
            assert sorted(cores) == list(range(48))

    def test_parent_child_links(self):
        topo = Topology(dancer())
        core = topo.core(0)
        ancestors = [a.type for a in core.ancestors()]
        assert ancestors == ["cache", "socket", "board", "machine"]

    def test_walk_preorder(self):
        topo = Topology(dancer())
        seen = [o.type for o in topo.root.walk()]
        assert seen[0] == "machine"
        assert seen.count("core") == 8

    def test_common_ancestor_same_socket(self):
        topo = Topology(dancer())
        anc = topo.common_ancestor(0, 3)
        assert anc.type == "cache"  # shared L3

    def test_common_ancestor_cross_socket(self):
        topo = Topology(dancer())
        anc = topo.common_ancestor(0, 7)
        assert anc.type == "board"

    def test_common_ancestor_cross_board(self):
        topo = Topology(ig())
        anc = topo.common_ancestor(0, 47)
        assert anc.type == "machine"

    def test_common_ancestor_self(self):
        topo = Topology(dancer())
        assert topo.common_ancestor(2, 2).type == "core"

    def test_render_mentions_all_cores(self):
        text = Topology(dancer()).render()
        for c in range(8):
            assert f"core {c}" in text

    def test_invalid_object_type_rejected(self):
        with pytest.raises(HardwareConfigError):
            TopologyObject("galaxy", 0, (0,))
