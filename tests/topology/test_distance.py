"""Distance matrix, locality grouping, binding policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareConfigError
from repro.hardware.machines import dancer, ig, zoot
from repro.topology.binding import bind_ranks
from repro.topology.distance import DistanceMatrix, group_by_domain, leader_order
from repro.topology.objects import Topology


@pytest.fixture(scope="module")
def ig_dist():
    return DistanceMatrix(Topology(ig()))


@pytest.fixture(scope="module")
def zoot_dist():
    return DistanceMatrix(Topology(zoot()))


class TestDistance:
    def test_self_distance_zero(self, ig_dist):
        assert ig_dist(7, 7) == 0

    def test_symmetry(self, ig_dist):
        m = ig_dist.matrix
        assert (m == m.T).all()

    def test_zoot_levels(self, zoot_dist):
        assert zoot_dist(0, 1) == 2    # shared L2 pair (single cache level)
        assert zoot_dist(0, 2) == 2    # same socket
        assert zoot_dist(0, 4) == 3    # same (single) memory domain

    def test_ig_levels(self, ig_dist):
        assert ig_dist(0, 1) == 2      # same socket / L3
        assert ig_dist(0, 6) == 4      # same board, different domain
        assert ig_dist(0, 47) == 5     # different boards

    def test_dancer_cross_socket(self):
        d = DistanceMatrix(Topology(dancer()))
        assert d(0, 3) == 2
        assert d(0, 4) == 4

    def test_nearest_prefers_closest(self, ig_dist):
        # candidates: same socket (1), same board (6), cross board (47)
        assert ig_dist.nearest(0, [47, 6, 1]) == 1

    def test_nearest_tie_break_by_index(self, ig_dist):
        assert ig_dist.nearest(0, [2, 1]) == 1

    def test_nearest_empty_rejected(self, ig_dist):
        with pytest.raises(ValueError):
            ig_dist.nearest(0, [])

    def test_monotone_with_topology_levels(self, ig_dist):
        spec = ig()
        for a in range(0, 48, 7):
            for b in range(0, 48, 5):
                d = ig_dist(a, b)
                if a == b:
                    continue
                same_socket = spec.core_socket(a) == spec.core_socket(b)
                same_board = spec.core_board(a) == spec.core_board(b)
                if same_socket:
                    assert d <= 2
                elif same_board:
                    assert d == 4
                else:
                    assert d == 5


class TestGrouping:
    def test_group_by_domain_ig(self):
        spec = ig()
        groups = group_by_domain(spec, list(range(48)))
        assert sorted(groups) == list(range(8))
        assert groups[0] == [0, 1, 2, 3, 4, 5]
        assert groups[7] == [42, 43, 44, 45, 46, 47]

    def test_group_subset(self):
        spec = dancer()
        groups = group_by_domain(spec, [0, 5, 6])
        assert groups == {0: [0], 1: [5, 6]}

    def test_leader_order_root_domain_first(self):
        spec = ig()
        order = leader_order(spec, root_core=14, domains=list(range(8)))
        assert order[0] == 2  # core 14 -> socket 2 -> domain 2
        # same-board domains precede cross-board ones
        boards = [0 if d < 4 else 1 for d in order]
        assert boards == sorted(boards, key=lambda b: b != 0)


class TestBinding:
    def test_linear_identity(self):
        assert bind_ranks(ig(), 48) == list(range(48))

    def test_linear_partial(self):
        assert bind_ranks(dancer(), 4) == [0, 1, 2, 3]

    def test_scatter_round_robins_sockets(self):
        cores = bind_ranks(dancer(), 4, policy="scatter")
        assert cores == [0, 4, 1, 5]

    def test_oversubscription_rejected(self):
        with pytest.raises(HardwareConfigError):
            bind_ranks(dancer(), 9)

    def test_zero_ranks_rejected(self):
        with pytest.raises(HardwareConfigError):
            bind_ranks(dancer(), 0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(HardwareConfigError):
            bind_ranks(dancer(), 4, policy="magic")


@given(n=st.integers(min_value=1, max_value=48))
@settings(max_examples=30)
def test_bindings_are_injective(n):
    spec = ig()
    for policy in ("linear", "scatter"):
        cores = bind_ranks(spec, n, policy=policy)
        assert len(cores) == n
        assert len(set(cores)) == n
        assert all(0 <= c < spec.n_cores for c in cores)
