"""Property-based fault schedules: correctness or a clean typed error.

Hypothesis draws random fault plans — op mix, rate, stickiness, seed — and
runs each collective under them on the paper machines.  Any schedule over
the KNEM driver ops must leave the result byte-identical to the no-fault
run (retry, per-operation fallback, and disqualification absorb every
fault).  Schedules that also break shared-memory slot acquisition have no
transport left to degrade to, so they may instead abort with a typed
:class:`FaultInjected` error — but never deadlock, corrupt data, or leak a
registered region.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import FaultInjected
from repro.faults import ALL_OPS, KNEM_OPS, FaultPlan
from repro.mpi import Job, Machine, stacks
from tests.faults.test_degradation import COLLECTIVES

pytestmark = pytest.mark.faults

MACHINES = [("zoot", 16), ("ig", 16)]

KNEM_OP_MIXES = [("register",), ("copy",), ("destroy",),
                 ("register", "copy"), KNEM_OPS]
ANY_OP_MIXES = KNEM_OP_MIXES + [("shm.slot",), ALL_OPS]


def plan_strategy(op_mixes):
    return st.builds(
        FaultPlan.random,
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.05, max_value=0.95),
        ops=st.sampled_from(op_mixes),
        sticky=st.booleans(),
    )


_REFS: dict = {}


def reference(machine, nprocs, op):
    key = (machine, nprocs, op)
    if key not in _REFS:
        job = Job(Machine.build(machine), nprocs=nprocs,
                  stack=stacks.KNEM_COLL)
        _REFS[key] = job.run(COLLECTIVES[op]).values
    return _REFS[key]


def run_plan(machine, nprocs, op, plan):
    m = Machine.build(machine)
    m.arm_faults(plan.fork())
    job = Job(m, nprocs=nprocs, stack=stacks.KNEM_COLL)
    res = job.run(COLLECTIVES[op])
    return m, res


common = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])


@pytest.mark.parametrize("machine,nprocs", MACHINES,
                         ids=[m for m, _ in MACHINES])
@pytest.mark.parametrize("op", sorted(COLLECTIVES))
class TestKnemFaultProperties:
    @settings(max_examples=12, **common)
    @given(plan=plan_strategy(KNEM_OP_MIXES))
    def test_any_knem_schedule_is_absorbed(self, op, machine, nprocs, plan):
        m, res = run_plan(machine, nprocs, op, plan)
        assert res.values == reference(machine, nprocs, op), \
            f"{op} corrupted by {plan!r}"
        assert m.knem.live_regions == 0


@pytest.mark.parametrize("op", sorted(COLLECTIVES))
class TestFullFaultProperties:
    @settings(max_examples=10, **common)
    @given(plan=plan_strategy(ANY_OP_MIXES))
    def test_completes_or_fails_cleanly(self, op, plan):
        machine, nprocs = MACHINES[0]
        try:
            m, res = run_plan(machine, nprocs, op, plan)
        except FaultInjected:
            # clean typed abort is acceptable only for SHM faults (no
            # transport left below shared memory); the machine of the
            # aborted job is unreachable here, so leak-freedom for this
            # branch is asserted by the explicit test below
            assert any(r.op == "shm.slot" for r in plan.rules)
        else:
            assert res.values == reference(machine, nprocs, op)
            assert m.knem.live_regions == 0


@settings(max_examples=10, **common)
@given(plan=plan_strategy([("shm.slot",), ALL_OPS]),
       op=st.sampled_from(sorted(COLLECTIVES)))
def test_aborted_runs_leak_nothing(op, plan):
    machine, nprocs = MACHINES[0]
    m = Machine.build(machine)
    m.arm_faults(plan.fork())
    job = Job(m, nprocs=nprocs, stack=stacks.KNEM_COLL)
    try:
        job.run(COLLECTIVES[op])
    except FaultInjected:
        pass
    assert m.knem.live_regions == 0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       rate=st.floats(min_value=0.0, max_value=1.0),
       sticky=st.booleans(),
       calls=st.lists(st.tuples(st.sampled_from(ALL_OPS),
                                st.integers(0, 63),
                                st.integers(0, 2**20)),
                      max_size=200))
def test_plans_replay_deterministically(seed, rate, sticky, calls):
    a = FaultPlan.random(seed=seed, rate=rate, ops=ALL_OPS, sticky=sticky)
    b = a.fork()
    seq_a = [a.fire(*c) for c in calls]
    assert seq_a == [b.fire(*c) for c in calls]
    assert a.injected == b.injected
