"""Watchdog tests: hangs become typed ``ProgressTimeout`` with diagnosis.

``Job.run(deadline=...)`` arms a simulated-time watchdog.  A program that
cannot finish — a genuine wait cycle, a message that never arrives, a
stall rule longer than the deadline — must surface as a typed error that
names the stuck processes and (when tracing is on) carries the analyzer's
wait-cycle findings, never as a silent hang.
"""

import pytest

from repro.errors import ProgressTimeout
from repro.faults import FaultPlan
from repro.mpi import Job, Machine, stacks
from repro.units import KiB

pytestmark = pytest.mark.faults

NPROCS = 4
COUNT = 4 * KiB


def make_job(machine="zoot", nprocs=NPROCS, trace=False, plan=None):
    m = Machine.build(machine, trace=trace)
    if plan is not None:
        m.arm_faults(plan.fork())
    return m, Job(m, nprocs=nprocs, stack=stacks.KNEM_COLL)


def head_to_head(proc):
    """Classic wait cycle: every rank recvs from its left before sending."""
    buf = proc.alloc_array(COUNT, "u1")
    left = (proc.rank - 1) % proc.comm.size
    right = (proc.rank + 1) % proc.comm.size
    yield from proc.comm.recv(left, buf.sim, 0, COUNT)
    yield from proc.comm.send(right, buf.sim, 0, COUNT)


def lonely_recv(proc):
    """Rank 0 waits for a message nobody ever sends."""
    buf = proc.alloc_array(COUNT, "u1")
    if proc.rank == 0:
        yield from proc.comm.recv(1, buf.sim, 0, COUNT)
    else:
        yield proc.machine.sim.timeout(0)


class TestWatchdogFires:
    def test_hang_becomes_typed_timeout(self):
        m, job = make_job()
        with pytest.raises(ProgressTimeout) as exc_info:
            job.run(head_to_head, deadline=1e-3)
        err = exc_info.value
        assert err.deadline == 1e-3
        # every rank program is named as stuck, with the event it sits on
        for rank in range(NPROCS):
            assert f"rank{rank}" in err.blocked
            assert err.waiting.get(f"rank{rank}")
        assert "watchdog" in str(err)

    def test_completed_run_is_untouched_by_deadline(self):
        m, job = make_job()

        def prog(proc):
            buf = proc.alloc_array(COUNT, "u1")
            if proc.rank == 0:
                buf.array[:] = 7
            yield from proc.comm.bcast(buf.sim, 0, COUNT, root=0)
            return bytes(buf.array[:4])

        res = job.run(prog, deadline=10.0)
        assert all(v == b"\x07\x07\x07\x07" for v in res.values)

    def test_stall_past_deadline_times_out(self):
        plan = FaultPlan.stall(5e-2, core=1, index=0)
        m, job = make_job(plan=plan)

        def prog(proc):
            buf = proc.alloc_array(COUNT, "u1")
            yield from proc.comm.bcast(buf.sim, 0, COUNT, root=0)

        with pytest.raises(ProgressTimeout):
            job.run(prog, deadline=1e-3)

    def test_timeout_emits_trace_event(self):
        m, job = make_job(trace=True)
        with pytest.raises(ProgressTimeout):
            job.run(lonely_recv, deadline=1e-3)
        hits = [r for r in m.tracer.records if r.category == "watchdog.timeout"]
        assert len(hits) == 1
        assert hits[0].fields["deadline"] == 1e-3
        assert "rank0" in hits[0].fields["blocked"]


class TestDiagnosis:
    def test_traced_hang_carries_wait_cycle_findings(self):
        m, job = make_job(trace=True)
        with pytest.raises(ProgressTimeout) as exc_info:
            job.run(head_to_head, deadline=1e-3)
        err = exc_info.value
        assert err.diagnosis, "tracing was on: the checker must explain the hang"
        text = " ".join(str(getattr(f, "message", f)) for f in err.diagnosis)
        assert "rank" in text

    def test_untraced_hang_still_fires_without_findings(self):
        m, job = make_job(trace=False)
        with pytest.raises(ProgressTimeout) as exc_info:
            job.run(head_to_head, deadline=1e-3)
        assert exc_info.value.diagnosis == []

    def test_report_lists_blocked_and_findings(self):
        m, job = make_job(trace=True)
        with pytest.raises(ProgressTimeout) as exc_info:
            job.run(head_to_head, deadline=1e-3)
        report = exc_info.value.report()
        assert "ProgressTimeout" in report
        assert "blocked: rank0" in report
        assert "finding:" in report


class TestCiArtifact:
    def test_report_file_written_when_env_set(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG_REPORT_DIR", str(tmp_path))
        m, job = make_job(trace=True)
        with pytest.raises(ProgressTimeout):
            job.run(head_to_head, deadline=1e-3)
        path = tmp_path / f"watchdog-{m.spec.name}.txt"
        assert path.exists()
        content = path.read_text()
        assert "ProgressTimeout" in content
        assert "blocked: rank0" in content

    def test_no_file_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_WATCHDOG_REPORT_DIR", raising=False)
        m, job = make_job()
        with pytest.raises(ProgressTimeout):
            job.run(lonely_recv, deadline=1e-3)
        assert list(tmp_path.iterdir()) == []
