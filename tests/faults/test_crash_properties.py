"""Property tests for crash/stall fault tolerance.

The acceptance contract of the rank-failure work, stated once and searched
by Hypothesis: **any** seeded crash or stall plan over the paper's
collectives ends in exactly one of

1. normal completion with byte-identical buffers on every rank,
2. a typed :class:`~repro.errors.RankFailed` at the surviving ranks whose
   collective could not complete (completed ranks keep correct bytes), or
3. a typed :class:`~repro.errors.ProgressTimeout` whose report carries the
   analyzer's diagnosis

— and in every case zero leaked KNEM regions and zero outstanding FIFO
slots.  Never an un-diagnosed hang, never corruption, never a leak.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ProgressTimeout, RankFailed
from repro.faults import FaultPlan
from repro.mpi import Job, Machine, stacks
from tests.faults.test_degradation import COLLECTIVES, reference

pytestmark = pytest.mark.faults

NPROCS = 8
MACHINE = "dancer"  # linear binding: core k hosts rank k
DEADLINE = 1.0  # simulated seconds; orders of magnitude past any clean run

STACKS = {s.name: s for s in (stacks.KNEM_COLL, stacks.TUNED_SM)}


@st.composite
def fault_scenarios(draw):
    op = draw(st.sampled_from(sorted(COLLECTIVES)))
    stack = draw(st.sampled_from(sorted(STACKS)))
    core = draw(st.integers(0, NPROCS - 1))
    kind = draw(st.sampled_from(["crash-entry", "crash-timed", "stall"]))
    if kind == "crash-entry":
        plan = FaultPlan.crash(core=core, index=0)
    elif kind == "crash-timed":
        # fail-stop in the middle of in-flight transfers, not at an entry
        plan = FaultPlan.crash(core=core,
                               at_time=draw(st.sampled_from([2e-5, 1e-4])))
    else:
        plan = FaultPlan.stall(draw(st.sampled_from([1e-4, 2e-3])),
                               core=core, index=0)
    return op, stack, core, kind, plan


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fault_scenarios())
def test_crash_or_stall_always_ends_diagnosed_and_leak_free(scenario):
    op, stack_name, core, kind, plan = scenario
    stack = STACKS[stack_name]
    program = COLLECTIVES[op]
    m = Machine.build(MACHINE)
    m.arm_faults(plan.fork())
    job = Job(m, nprocs=NPROCS, stack=stack)

    completed = {}
    failed = {}

    def wrapped(proc):
        try:
            value = yield from program(proc)
        except RankFailed as err:
            failed[proc.rank] = (err.rank, err.op)
            raise
        completed[proc.rank] = value
        return value

    outcome = None
    try:
        job.run(wrapped, deadline=DEADLINE)
        outcome = "ok"
    except RankFailed as err:
        outcome = "rank-failed"
        dead = set(job.world.dead)
        assert err.rank in dead
        # every live rank reached a terminal state: completed its
        # collective or observed the typed failure — none silently dropped
        assert set(completed) | set(failed) | dead == set(range(NPROCS))
        for rank, (victim, _op) in failed.items():
            assert victim in dead, f"rank {rank} blamed a live rank"
    except ProgressTimeout as err:
        outcome = "timeout"
        # a hang is only acceptable as a typed, reportable timeout
        assert err.blocked
        assert err.report().startswith("ProgressTimeout")

    if outcome == "ok":
        # stalls and non-firing rules must never corrupt: byte-identical
        # to the fault-free run of the same collective on the same stack
        if kind == "stall":
            assert job.world.dead == {}
        ref = reference(op, stack)
        for rank, value in completed.items():
            assert value == ref[rank], f"{op}/{stack_name} rank {rank} corrupted"
    elif outcome == "rank-failed":
        # completed ranks got their full payload before the failure: their
        # bytes must match the fault-free run exactly
        ref = reference(op, stack)
        for rank, value in completed.items():
            assert value == ref[rank], f"{op}/{stack_name} rank {rank} corrupted"

    # the invariant that holds in EVERY outcome: nothing leaks
    assert m.knem.live_regions == 0, f"{outcome}: leaked KNEM regions"
    assert m.shm.slots_outstanding == 0, f"{outcome}: leaked FIFO slots"


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(core=st.integers(0, NPROCS - 1),
       stack=st.sampled_from(sorted(STACKS)))
def test_shrink_retry_bcast_recovers_any_victim(core, stack):
    """Shrink-and-retry converges for every choice of victim, both stacks."""
    from tests.faults.test_degradation import pattern

    COUNT = 64 * 1024
    expected = pattern(0, COUNT, salt=0).tobytes()

    def prog(proc):
        buf = proc.alloc_array(COUNT, "u1")
        if proc.rank == 0:
            buf.array[:] = pattern(0, COUNT, salt=0)
        comm = proc.comm
        while True:
            try:
                yield from comm.bcast(buf.sim, 0, COUNT, root=0)
                return buf.array.tobytes()
            except RankFailed:
                comm = comm.shrink()
                if proc.rank == comm.world_rank(0):
                    buf.array[:] = pattern(0, COUNT, salt=0)

    m = Machine.build(MACHINE)
    m.arm_faults(FaultPlan.crash(core=core, index=0).fork())
    job = Job(m, nprocs=NPROCS, stack=STACKS[stack])
    res = job.run(prog, deadline=DEADLINE)
    assert res.dead_ranks == (core,)
    for rank in res.survivors:
        assert res.values[rank] == expected, f"rank {rank} corrupted"
    assert m.knem.live_regions == 0
    assert m.shm.slots_outstanding == 0
