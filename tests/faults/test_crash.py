"""Rank-crash fault tolerance: ULFM-style failure, shrink, and reclaim.

A ``rank.crash`` rule fail-stops one rank at a chosen collective entry (or
absolute simulated time).  These tests pin the contract: every surviving
peer of an in-flight collective observes a typed
:class:`~repro.errors.RankFailed` instead of hanging, ``shrink()`` rebuilds
a working communicator over the survivors, and the dead rank's kernel
state — KNEM regions and shared-memory FIFO slots — is reclaimed, never
leaked.
"""

import numpy as np
import pytest

from repro.errors import MpiError, RankFailed
from repro.faults import FaultPlan
from repro.mpi import Job, Machine, stacks
from repro.units import KiB

pytestmark = pytest.mark.faults

COUNT = 64 * KiB
NPROCS = 8


def pattern(rank: int, n: int) -> np.ndarray:
    return ((np.arange(n) * (rank + 3)) % 251).astype(np.uint8)


def make_job(plan=None, stack=stacks.KNEM_COLL, machine="dancer",
             nprocs=NPROCS, trace=False):
    m = Machine.build(machine, trace=trace)
    if plan is not None:
        m.arm_faults(plan.fork())
    return m, Job(m, nprocs=nprocs, stack=stack)


def bcast_survivor_program(proc):
    """Broadcast; on peer death, shrink and retry on the survivors."""
    buf = proc.alloc_array(COUNT, "u1")
    if proc.rank == 0:
        buf.array[:] = pattern(0, COUNT)
    comm = proc.comm
    while True:
        try:
            yield from comm.bcast(buf.sim, 0, COUNT, root=0)
            return buf.array.tobytes()
        except RankFailed:
            comm = comm.shrink()


class TestCrashDelivery:
    def test_all_survivors_observe_rank_failed(self):
        victim_core = 2  # linear binding: rank 2
        plan = FaultPlan.crash(core=victim_core, index=0)
        m, job = make_job(plan)
        observed = []

        def prog(proc):
            buf = proc.alloc_array(COUNT, "u1")
            try:
                yield from proc.comm.bcast(buf.sim, 0, COUNT, root=0)
            except RankFailed as err:
                observed.append((proc.rank, err.rank, err.op))
                raise

        with pytest.raises(RankFailed) as exc_info:
            job.run(prog)
        assert exc_info.value.rank == 2
        assert exc_info.value.op == "bcast"
        # every survivor (all ranks but the victim) saw the same failure
        assert sorted(r for r, _, _ in observed) == [0, 1, 3, 4, 5, 6, 7]
        assert {(v, op) for _, v, op in observed} == {(2, "bcast")}
        assert job.world.dead == {2: "bcast"}

    def test_collective_on_comm_with_dead_member_fails_fast(self):
        plan = FaultPlan.crash(core=1, index=0)
        m, job = make_job(plan)

        def prog(proc):
            buf = proc.alloc_array(COUNT, "u1")
            try:
                yield from proc.comm.bcast(buf.sim, 0, COUNT, root=0)
            except RankFailed:
                pass
            # second collective on the unshrunk communicator: immediate
            # RankFailed at entry, no hang, no partial participation
            yield from proc.comm.barrier()

        with pytest.raises(RankFailed) as exc_info:
            job.run(prog)
        assert exc_info.value.op == "barrier"

    def test_crashed_rank_result_is_none(self):
        plan = FaultPlan.crash(core=3, index=0)
        m, job = make_job(plan)
        res = job.run(bcast_survivor_program)
        assert res.dead_ranks == (3,)
        assert res.values[3] is None
        assert res.finish_times[3] is None
        assert res.survivors == [0, 1, 2, 4, 5, 6, 7]


class TestShrinkAndRetry:
    @pytest.mark.parametrize("stack", [stacks.KNEM_COLL, stacks.TUNED_SM],
                             ids=lambda s: s.name)
    def test_shrink_retry_is_byte_identical(self, stack):
        expected = pattern(0, COUNT).tobytes()
        plan = FaultPlan.crash(core=5, index=0)
        m, job = make_job(plan, stack=stack)
        res = job.run(bcast_survivor_program)
        assert res.dead_ranks == (5,)
        for rank in res.survivors:
            assert res.values[rank] == expected, f"rank {rank} corrupted"
        # kernel state fully reclaimed: nothing leaks across the failure
        assert m.knem.live_regions == 0
        assert m.shm.slots_outstanding == 0

    def test_shrink_translates_ranks_consistently(self):
        plan = FaultPlan.crash(core=0, index=0)  # kill the root itself
        m, job = make_job(plan)

        def prog(proc):
            buf = proc.alloc_array(COUNT, "u1")
            comm = proc.comm
            try:
                yield from comm.bcast(buf.sim, 0, COUNT, root=0)
            except RankFailed:
                comm = comm.shrink()
            if proc.rank == 1:  # world rank 1 is the shrunk comm's rank 0
                buf.array[:] = pattern(1, COUNT)
            yield from comm.bcast(buf.sim, 0, COUNT, root=0)
            return (comm.rank, comm.size, buf.array.tobytes())

        res = job.run(prog)
        expected = pattern(1, COUNT).tobytes()
        ranks = {}
        for wrank in res.survivors:
            new_rank, new_size, data = res.values[wrank]
            assert new_size == NPROCS - 1
            assert data == expected
            ranks[wrank] = new_rank
        assert sorted(ranks.values()) == list(range(NPROCS - 1))
        assert ranks[1] == 0  # survivors renumber densely in world order

    def test_job_refuses_to_run_with_no_survivors(self):
        m, job = make_job()
        for rank in range(NPROCS):
            job.world.kill_rank(rank, reason="test")
        with pytest.raises(MpiError, match="no live ranks"):
            job.run(bcast_survivor_program)


class TestTimedAndStallRules:
    def test_at_time_crash_kills_mid_run(self):
        plan = FaultPlan.crash(core=4, at_time=1e-4)
        m, job = make_job(plan)

        def prog(proc):
            buf = proc.alloc_array(COUNT, "u1")
            for _ in range(200):
                yield from proc.comm.bcast(buf.sim, 0, COUNT, root=0)
            return "finished"

        with pytest.raises(RankFailed) as exc_info:
            job.run(prog)
        assert exc_info.value.rank == 4
        assert 4 in job.world.dead
        assert m.fault_plan.injected.get("rank.crash") == 1

    def test_stall_rule_delays_entry_and_counts(self):
        delay = 5e-3
        m_ref, job_ref = make_job()
        base = job_ref.run(bcast_survivor_program)
        plan = FaultPlan.stall(delay, core=6, index=0)
        m, job = make_job(plan)
        res = job.run(bcast_survivor_program)
        assert res.dead_ranks == ()
        assert res.values == base.values  # a stall never corrupts data
        # the stalled rank cannot finish before its delay elapses, so the
        # job-wide elapsed time is bounded below by it
        assert res.elapsed >= delay > base.elapsed
        assert m.fault_plan.injected.get("rank.stall") == 1

    def test_crash_emits_trace_events(self):
        plan = FaultPlan.crash(core=2, index=0)
        m, job = make_job(plan, trace=True)
        job.run(bcast_survivor_program)
        crashes = [r for r in m.tracer.records if r.category == "rank.crash"]
        assert len(crashes) == 1
        assert crashes[0].fields["rank"] == 2
        assert crashes[0].fields["op"] == "bcast"
        reclaims = [r for r in m.tracer.records
                    if r.category == "rank.reclaim"]
        assert all(r.fields["rank"] == 2 for r in reclaims)
