"""Differential fault-injection tests: collectives survive KNEM outages.

Each test runs a collective program twice — once on a healthy machine and
once with a :class:`FaultPlan` armed — and requires the faulted run to be
byte-identical to the healthy one with zero leaked KNEM regions.  Sticky
plans force the per-operation copy-in/copy-out fallback (and, with the
strict stack, job-wide disqualification); transient plans must recover via
the retry path and requalify the device.
"""

import math

import numpy as np
import pytest

from repro.errors import ShmFaultInjected
from repro.faults import FaultPlan, FaultRule
from repro.mpi import Job, Machine, stacks
from repro.units import KiB

pytestmark = pytest.mark.faults

COUNT = 64 * KiB  # above KNEM-Coll's 16 KB delegation threshold


def pattern(rank: int, n: int, salt: int = 0) -> np.ndarray:
    return ((np.arange(n) * (rank + 3) + salt) % 251).astype(np.uint8)


# --------------------------------------------------------------------------
# one deterministic program per collective; each returns the received bytes
# so runs can be compared byte-for-byte across machines
# --------------------------------------------------------------------------

def bcast_program(proc):
    buf = proc.alloc_array(COUNT, "u1")
    if proc.rank == 1:
        buf.array[:] = pattern(1, COUNT)
    yield from proc.comm.bcast(buf.sim, 0, COUNT, root=1)
    return buf.array.tobytes()


def _ragged(size):
    counts = [24 * KiB + 512 * r for r in range(size)]
    displs = list(np.cumsum([0] + counts[:-1]))
    return counts, displs


def scatterv_program(proc):
    size = proc.comm.size
    counts, displs = _ragged(size)
    send = None
    if proc.rank == 0:
        send = proc.alloc_array(sum(counts), "u1")
        for r in range(size):
            send.array[displs[r]:displs[r] + counts[r]] = \
                pattern(r, counts[r], salt=2)
    recv = proc.alloc_array(counts[proc.rank], "u1")
    yield from proc.comm.scatterv(send.sim if send else None, counts, displs,
                                  recv.sim, root=0)
    return recv.array.tobytes()


def gatherv_program(proc):
    size = proc.comm.size
    counts, displs = _ragged(size)
    send = proc.alloc_array(counts[proc.rank], "u1")
    send.array[:] = pattern(proc.rank, counts[proc.rank], salt=3)
    recv = proc.alloc_array(sum(counts), "u1") if proc.rank == 2 else None
    yield from proc.comm.gatherv(send.sim, recv.sim if recv else None,
                                 counts, displs, root=2)
    return recv.array.tobytes() if recv is not None else b"non-root"


def allgatherv_program(proc):
    size = proc.comm.size
    counts, displs = _ragged(size)
    send = proc.alloc_array(counts[proc.rank], "u1")
    send.array[:] = pattern(proc.rank, counts[proc.rank], salt=5)
    recv = proc.alloc_array(sum(counts), "u1")
    yield from proc.comm.allgatherv(send.sim, recv.sim, counts, displs)
    return recv.array.tobytes()


def alltoallv_program(proc):
    size = proc.comm.size
    # every rank's max send count stays above the 16 KB delegation point
    def block(r, p):
        return 20 * KiB + 256 * (r + p)

    send_counts = [block(proc.rank, p) for p in range(size)]
    send_displs = list(np.cumsum([0] + send_counts[:-1]))
    recv_counts = [block(p, proc.rank) for p in range(size)]
    recv_displs = list(np.cumsum([0] + recv_counts[:-1]))
    send = proc.alloc_array(sum(send_counts), "u1")
    for p in range(size):
        send.array[send_displs[p]:send_displs[p] + send_counts[p]] = \
            pattern(proc.rank * size + p, send_counts[p], salt=7)
    recv = proc.alloc_array(sum(recv_counts), "u1")
    yield from proc.comm.alltoallv(send.sim, send_counts, send_displs,
                                   recv.sim, recv_counts, recv_displs)
    return recv.array.tobytes()


COLLECTIVES = {
    "bcast": bcast_program,
    "scatterv": scatterv_program,
    "gatherv": gatherv_program,
    "allgatherv": allgatherv_program,
    "alltoallv": alltoallv_program,
}

PLANS = {
    "all-sticky": lambda: FaultPlan.all_fail(sticky=True),
    "register-sticky": lambda: FaultPlan.all_fail(("register",), sticky=True),
    "copy-sticky": lambda: FaultPlan.all_fail(("copy",), sticky=True),
    "destroy-sticky": lambda: FaultPlan.all_fail(("destroy",), sticky=True),
    "random-30": lambda: FaultPlan.random(seed=3, rate=0.3),
}


def run_faulted(program, plan=None, stack=stacks.KNEM_COLL, nprocs=8,
                machine="dancer", trace=False):
    m = Machine.build(machine, trace=trace)
    if plan is not None:
        m.arm_faults(plan.fork())
    job = Job(m, nprocs=nprocs, stack=stack)
    res = job.run(program)
    return m, res


_REFS: dict = {}


def reference(op, stack=stacks.KNEM_COLL):
    """No-fault run of the collective (cached: programs are deterministic)."""
    key = (op, stack.name)
    if key not in _REFS:
        _, res = run_faulted(COLLECTIVES[op], stack=stack)
        _REFS[key] = res.values
    return _REFS[key]


def events(machine, name):
    return [r for r in machine.tracer.records if r.category == name]


class TestKnemCollDegradation:
    @pytest.mark.parametrize("plan_name", sorted(PLANS))
    @pytest.mark.parametrize("op", sorted(COLLECTIVES))
    def test_byte_identical_under_faults(self, op, plan_name):
        m, res = run_faulted(COLLECTIVES[op], PLANS[plan_name]())
        assert res.values == reference(op), f"{op} diverged under {plan_name}"
        assert m.knem.live_regions == 0
        assert m.knem.stats_injected_faults > 0
        assert m.knem.stats_injected_faults == m.knem.fault_plan.total_injected

    def test_total_outage_emits_degrade_events(self):
        m, res = run_faulted(bcast_program, PLANS["all-sticky"](), trace=True)
        assert res.values == reference("bcast")
        degrades = events(m, "knem.degrade")
        assert degrades
        for rec in degrades:
            assert {"core", "op", "consecutive", "disqualified"} <= set(rec.fields)
        assert m.knem.health.total_failures == len(degrades)

    def test_transient_double_failure_then_requalify(self):
        # both attempts of the first registration per core fail, later
        # calls succeed: one degrade per affected core, then a requalify
        plan = FaultPlan([FaultRule(op="register", index=0),
                          FaultRule(op="register", index=1)])
        m, res = run_faulted(bcast_program, plan, trace=True)
        assert res.values == reference("bcast")
        assert events(m, "knem.degrade")
        assert events(m, "knem.requalify")
        assert not m.knem.health.disqualified
        assert m.knem.health.consecutive_failures == 0
        assert m.knem.health.total_recoveries > 0
        assert m.knem.live_regions == 0

    def test_single_failure_recovered_by_retry_is_silent(self):
        # one failed attempt, the in-call retry succeeds: no degrade event
        plan = FaultPlan.nth_call("register", 0)
        m, res = run_faulted(bcast_program, plan, trace=True)
        assert res.values == reference("bcast")
        assert m.knem.stats_injected_faults > 0
        assert not events(m, "knem.degrade")
        assert m.knem.live_regions == 0

    def test_strict_stack_disqualifies_device(self):
        m, res = run_faulted(alltoallv_program, PLANS["copy-sticky"](),
                             stack=stacks.KNEM_COLL_STRICT, trace=True)
        assert res.values == reference("alltoallv", stacks.KNEM_COLL_STRICT)
        assert m.knem.health.disqualified
        assert any(rec.fields["disqualified"]
                   for rec in events(m, "knem.degrade"))
        assert m.knem.live_regions == 0

    def test_disqualification_is_final(self):
        # once disqualified no requalify can ever fire, and a later
        # collective on the same job stays correct via copy-in/copy-out
        def program(proc):
            first = yield from bcast_program(proc)
            second = yield from gatherv_program(proc)
            return (first, second)

        m = Machine.build("dancer")
        m.arm_faults(FaultPlan.all_fail(("register",), sticky=True))
        job = Job(m, nprocs=8, stack=stacks.KNEM_COLL_STRICT)
        res = job.run(program)
        firsts = [v[0] for v in res.values]
        seconds = [v[1] for v in res.values]
        assert firsts == reference("bcast")
        assert seconds == reference("gatherv")
        assert m.knem.health.disqualified
        assert not events(m, "knem.requalify")
        assert m.knem.live_regions == 0

    def test_root_reads_gather_ablation_degrades(self):
        stack = stacks.KNEM_COLL.with_tuning(name="KNEM-RootReads-faulted",
                                             gather_direction_write=False)
        m, res = run_faulted(gatherv_program, PLANS["all-sticky"](),
                             stack=stack)
        assert res.values == reference("gatherv")
        assert m.knem.live_regions == 0

    @pytest.mark.parametrize("machine,nprocs", [("zoot", 16), ("ig", 48)],
                             ids=["zoot16", "ig48"])
    def test_full_machine_outage(self, machine, nprocs):
        """Hierarchical paths (leaders, segments) degrade cleanly too."""
        _, ref = run_faulted(bcast_program, machine=machine, nprocs=nprocs)
        m, res = run_faulted(bcast_program, PLANS["all-sticky"](),
                             machine=machine, nprocs=nprocs)
        assert res.values == ref.values
        assert m.knem.live_regions == 0


class TestPmlDegradation:
    """Point-to-point KNEM (Tuned-KNEM BTL) falls back per message."""

    def test_sender_register_outage_falls_back_to_sm(self):
        plan = FaultPlan.all_fail(("register",), sticky=True)
        m, res = run_faulted(bcast_program, plan, stack=stacks.TUNED_KNEM)
        assert res.values == reference("bcast", stacks.TUNED_KNEM)
        assert m.knem.live_regions == 0
        assert m.knem.stats_injected_faults > 0

    def test_receiver_copy_failure_takes_retransmit_path(self):
        # both copy attempts of a delivery fail -> NACK + copy-in/copy-out
        # retransmission; payload must still arrive intact
        plan = FaultPlan.all_fail(("copy",), sticky=True)
        m, res = run_faulted(bcast_program, plan, stack=stacks.TUNED_KNEM)
        assert res.values == reference("bcast", stacks.TUNED_KNEM)
        assert m.knem.live_regions == 0

    def test_random_faults_on_pml(self):
        plan = FaultPlan.random(seed=17, rate=0.25)
        m, res = run_faulted(gatherv_program, plan, stack=stacks.TUNED_KNEM)
        assert res.values == reference("gatherv", stacks.TUNED_KNEM)
        assert m.knem.live_regions == 0

    def test_mpich_knem_lmt_degrades(self):
        plan = FaultPlan.all_fail(sticky=True)
        m, res = run_faulted(alltoallv_program, plan,
                             stack=stacks.MPICH2_KNEM)
        assert res.values == reference("alltoallv", stacks.MPICH2_KNEM)
        assert m.knem.live_regions == 0


class TestShmFaults:
    def test_slot_fault_raises_typed_error_not_deadlock(self):
        plan = FaultPlan.all_fail(("shm.slot",), sticky=True)
        m = Machine.build("dancer")
        m.arm_faults(plan.fork())
        job = Job(m, nprocs=8, stack=stacks.TUNED_SM)
        with pytest.raises(ShmFaultInjected):
            job.run(bcast_program)

    def test_slot_fault_mid_knem_coll_leaks_nothing(self):
        # Register faults degrade some sends to the copy-in/copy-out FIFO,
        # whose slot acquisition then faults: the job aborts while other
        # ranks still hold registered regions.  The abort path must reclaim
        # every one of them (seed chosen so regions are live at the abort).
        plan = FaultPlan([FaultRule(op="register", probability=0.5),
                          FaultRule(op="shm.slot", sticky=True)], seed=1)
        m = Machine.build("dancer")
        m.arm_faults(plan.fork())
        job = Job(m, nprocs=8, stack=stacks.KNEM_COLL)
        with pytest.raises(ShmFaultInjected):
            job.run(alltoallv_program)
        assert m.knem.stats_registrations > 0
        assert m.knem.stats_reclaims > 0
        assert m.knem.live_regions == 0


class TestZeroOverhead:
    # runs are compared with a tight relative tolerance: simulated times
    # carry ~1-ulp run-to-run float jitter even on identical schedules,
    # far below the <2% budget the fault hooks must respect

    def test_unarmed_machine_timing_identical(self):
        _, plain = run_faulted(bcast_program)
        m = Machine.build("dancer")
        m.arm_faults(None)
        disarmed = Job(m, nprocs=8, stack=stacks.KNEM_COLL).run(bcast_program)
        assert math.isclose(disarmed.elapsed, plain.elapsed, rel_tol=1e-9)
        assert disarmed.values == plain.values

    def test_never_matching_plan_timing_identical(self):
        # armed but silent: the bcast fast path may not slow down at all
        _, plain = run_faulted(bcast_program)
        plan = FaultPlan([FaultRule(op="register", core=10**6)])
        m, armed = run_faulted(bcast_program, plan)
        assert math.isclose(armed.elapsed, plain.elapsed, rel_tol=1e-9)
        assert armed.values == plain.values
        assert m.knem.stats_injected_faults == 0
