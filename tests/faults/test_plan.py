"""FaultPlan unit tests: determinism, matching, latching, typed errors."""

import pytest

from repro.errors import FaultInjected, KnemFaultInjected, ShmFaultInjected
from repro.faults import ALL_OPS, KNEM_OPS, FaultPlan, FaultRule

pytestmark = pytest.mark.faults


def fire_sequence(plan, calls):
    return [plan.fire(op, core, size) for op, core, size in calls]


CALLS = [("register", c % 4, 1024 * (c + 1)) for c in range(32)] + \
        [("copy", c % 4, 4096) for c in range(32)] + \
        [("destroy", 0, 0) for _ in range(8)]


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = FaultPlan.random(seed=7, rate=0.4)
        b = FaultPlan.random(seed=7, rate=0.4)
        assert fire_sequence(a, CALLS) == fire_sequence(b, CALLS)
        assert a.injected == b.injected

    def test_different_seed_different_sequence(self):
        a = FaultPlan.random(seed=1, rate=0.5)
        b = FaultPlan.random(seed=2, rate=0.5)
        assert fire_sequence(a, CALLS) != fire_sequence(b, CALLS)

    def test_fork_resets_counters_and_latches(self):
        plan = FaultPlan.nth_call("register", 3, sticky=True)
        fire_sequence(plan, CALLS)
        assert plan.total_injected > 0
        fresh = plan.fork()
        assert fresh.calls == 0
        assert fresh.total_injected == 0
        assert fresh.rules == plan.rules and fresh.seed == plan.seed
        # the fork replays identically to a brand-new plan
        assert fire_sequence(fresh, CALLS) == \
            fire_sequence(FaultPlan.nth_call("register", 3, sticky=True), CALLS)


class TestMatching:
    def test_all_fail_hits_every_knem_op(self):
        plan = FaultPlan.all_fail()
        assert all(plan.fire(op, 0, 64) for op in KNEM_OPS)
        assert not plan.fire("shm.slot", 0, 64)  # not in KNEM_OPS default

    def test_nth_call_counts_per_op_core_pair(self):
        plan = FaultPlan.nth_call("copy", 2)
        # index counts separately per (op, core)
        assert [plan.fire("copy", 5, 0) for _ in range(4)] == \
            [False, False, True, False]
        assert [plan.fire("copy", 6, 0) for _ in range(4)] == \
            [False, False, True, False]
        # other ops never match
        assert not any(plan.fire("register", 5, 0) for _ in range(4))

    def test_core_targeting(self):
        plan = FaultPlan([FaultRule(op="register", core=3)])
        assert not plan.fire("register", 2, 0)
        assert plan.fire("register", 3, 0)

    def test_size_window(self):
        plan = FaultPlan([FaultRule(op="copy", min_size=1024, max_size=4096)])
        assert not plan.fire("copy", 0, 512)
        assert plan.fire("copy", 0, 1024)
        assert plan.fire("copy", 0, 4096)
        assert not plan.fire("copy", 0, 8192)

    def test_probability_rate(self):
        plan = FaultPlan.random(seed=11, rate=0.3)
        n = 2000
        fired = sum(plan.fire("copy", 0, 64) for _ in range(n))
        assert 0.2 * n < fired < 0.4 * n

    def test_zero_probability_never_fires(self):
        plan = FaultPlan.random(seed=11, rate=0.0)
        assert not any(plan.fire("copy", 0, 64) for _ in range(100))


class TestLatching:
    def test_sticky_latches_after_first_fire(self):
        plan = FaultPlan.nth_call("register", 2, sticky=True)
        seq = [plan.fire("register", 0, 0) for _ in range(6)]
        assert seq == [False, False, True, True, True, True]

    def test_sticky_latch_ignores_index_but_keeps_site_filter(self):
        plan = FaultPlan([FaultRule(op="copy", index=0, sticky=True,
                                    min_size=100)])
        assert plan.fire("copy", 0, 200)       # trips and latches
        assert plan.fire("copy", 0, 200)       # latched: index ignored
        assert not plan.fire("copy", 0, 50)    # size window still applies
        assert not plan.fire("register", 0, 200)

    def test_max_fires_caps_nonsticky_rule(self):
        plan = FaultPlan([FaultRule(op="copy", max_fires=2)])
        seq = [plan.fire("copy", 0, 0) for _ in range(5)]
        assert seq == [True, True, False, False, False]

    def test_injection_accounting(self):
        plan = FaultPlan.all_fail(("register", "copy"))
        for _ in range(3):
            plan.fire("register", 0, 0)
        plan.fire("copy", 1, 0)
        plan.fire("destroy", 1, 0)
        assert plan.injected == {"register": 3, "copy": 1}
        assert plan.total_injected == 4
        assert plan.calls == 5


class TestErrorsAndValidation:
    def test_exception_types(self):
        plan = FaultPlan.all_fail(ALL_OPS)
        for op in KNEM_OPS:
            exc = plan.exception(op, 2, 128)
            assert isinstance(exc, KnemFaultInjected)
            assert isinstance(exc, FaultInjected)
        assert isinstance(plan.exception("shm.slot", 2, 128), ShmFaultInjected)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown fault op"):
            FaultRule(op="mmap")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(op="copy", probability=1.5)

    def test_empty_plan_is_unarmed(self):
        plan = FaultPlan([])
        assert not plan.armed
        assert not plan.fire("register", 0, 0)
        assert FaultPlan.all_fail().armed
