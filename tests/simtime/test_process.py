"""Process semantics: yielding, return values, exceptions, composition."""

import pytest

from repro.errors import SimulationError
from repro.simtime import AllOf, AnyOf, Simulator
from repro.simtime.process import Interrupted


class TestProcess:
    def test_return_value_becomes_event_value(self, sim):
        def body():
            yield sim.timeout(1.0)
            return "done"

        p = sim.process(body())
        sim.run()
        assert p.ok and p.value == "done"

    def test_sequential_timeouts_accumulate(self, sim):
        marks = []

        def body():
            for dt in (1.0, 2.0, 3.0):
                yield sim.timeout(dt)
                marks.append(sim.now)

        sim.process(body())
        sim.run()
        assert marks == [1.0, 3.0, 6.0]

    def test_yield_from_composition(self, sim):
        def inner(dt):
            yield sim.timeout(dt)
            return dt * 2

        def outer():
            a = yield from inner(1.0)
            b = yield from inner(2.0)
            return a + b

        p = sim.process(outer())
        sim.run()
        assert p.value == 6.0
        assert sim.now == 3.0

    def test_event_value_delivered_to_generator(self, sim):
        ev = sim.event()
        got = []

        def body():
            v = yield ev
            got.append(v)

        sim.process(body())
        sim.schedule(1.0, lambda: ev.succeed("hello"))
        sim.run()
        assert got == ["hello"]

    def test_failed_event_raises_inside_generator(self, sim):
        ev = sim.event()
        caught = []

        def body():
            try:
                yield ev
            except ValueError as e:
                caught.append(str(e))

        sim.process(body())
        sim.schedule(1.0, lambda: ev.fail(ValueError("boom")))
        sim.run()
        assert caught == ["boom"]

    def test_uncaught_exception_fails_process(self, sim):
        def body():
            yield sim.timeout(1.0)
            raise RuntimeError("die")

        p = sim.process(body())
        p._defused = True  # we inspect the failure instead of crashing run()
        sim.run()
        assert not p.ok
        assert isinstance(p.value, RuntimeError)

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError, match="generator"):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_yielding_non_event_fails(self, sim):
        def body():
            yield 42

        p = sim.process(body())
        p._defused = True
        sim.run()
        assert not p.ok
        assert isinstance(p.value, SimulationError)

    def test_yielding_foreign_event_fails(self, sim):
        other = Simulator()

        def body():
            yield other.event()

        p = sim.process(body())
        p._defused = True
        sim.run()
        assert not p.ok

    def test_process_is_waitable(self, sim):
        def child():
            yield sim.timeout(2.0)
            return 7

        def parent():
            v = yield sim.process(child())
            return v + 1

        p = sim.process(parent())
        sim.run()
        assert p.value == 8

    def test_interrupt(self, sim):
        log = []

        def body():
            try:
                yield sim.timeout(100.0)
            except Interrupted as e:
                log.append(e.reason)

        p = sim.process(body())
        sim.schedule(1.0, lambda: p.interrupt("stop it"))
        sim.run(until=5.0)
        assert log == ["stop it"]

    def test_interrupt_finished_process_rejected(self, sim):
        def body():
            return 1
            yield  # pragma: no cover

        p = sim.process(body())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestComposites:
    def test_allof_collects_values_in_order(self, sim):
        evs = [sim.timeout(3.0, value="c"), sim.timeout(1.0, value="a"),
               sim.timeout(2.0, value="b")]
        results = []

        def body():
            vals = yield AllOf(sim, evs)
            results.append((sim.now, vals))

        sim.process(body())
        sim.run()
        assert results == [(3.0, ["c", "a", "b"])]

    def test_allof_empty_succeeds_immediately(self, sim):
        all_of = AllOf(sim, [])
        assert all_of.triggered and all_of.value == []

    def test_allof_propagates_failure(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event()
        caught = []

        def body():
            try:
                yield AllOf(sim, [good, bad])
            except KeyError:
                caught.append(True)

        sim.process(body())
        sim.schedule(2.0, lambda: bad.fail(KeyError("k")))
        sim.run()
        assert caught == [True]

    def test_anyof_returns_first(self, sim):
        slow = sim.timeout(5.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        got = []

        def body():
            idx, val = yield AnyOf(sim, [slow, fast])
            got.append((idx, val, sim.now))

        sim.process(body())
        sim.run()
        assert got == [(1, "fast", 1.0)]

    def test_anyof_requires_events(self, sim):
        with pytest.raises(SimulationError):
            AnyOf(sim, [])

    def test_anyof_late_events_ignored(self, sim):
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(2.0, value="b")
        any_of = AnyOf(sim, [a, b])
        sim.run()
        assert any_of.value == (0, "a")
