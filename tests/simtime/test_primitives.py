"""Channel / Semaphore / CountdownLatch semantics."""

import pytest

from repro.errors import SimulationError
from repro.simtime import Channel, CountdownLatch, Semaphore


class TestChannel:
    def test_put_then_get(self, sim):
        ch = Channel(sim)
        ch.put("x")
        got = []

        def body():
            v = yield ch.get()
            got.append(v)

        sim.process(body())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self, sim):
        ch = Channel(sim)
        got = []

        def getter():
            v = yield ch.get()
            got.append((v, sim.now))

        sim.process(getter())
        sim.schedule(3.0, lambda: ch.put("late"))
        sim.run()
        assert got == [("late", 3.0)]

    def test_fifo_item_order(self, sim):
        ch = Channel(sim)
        for i in range(4):
            ch.put(i)
        got = []

        def body():
            for _ in range(4):
                got.append((yield ch.get()))

        sim.process(body())
        sim.run()
        assert got == [0, 1, 2, 3]

    def test_fifo_getter_order(self, sim):
        ch = Channel(sim)
        got = []

        def getter(name):
            v = yield ch.get()
            got.append((name, v))

        sim.process(getter("a"))
        sim.process(getter("b"))
        sim.schedule(1.0, lambda: ch.put(1))
        sim.schedule(2.0, lambda: ch.put(2))
        sim.run()
        assert got == [("a", 1), ("b", 2)]

    def test_len_and_waiters(self, sim):
        ch = Channel(sim)
        assert len(ch) == 0 and ch.waiters == 0
        ch.put(1)
        assert len(ch) == 1
        ch.get()
        assert len(ch) == 0


class TestSemaphore:
    def test_capacity_grants(self, sim):
        sem = Semaphore(sim, 2)
        a, b, c = sem.acquire(), sem.acquire(), sem.acquire()
        assert a.triggered and b.triggered and not c.triggered
        sem.release()
        assert c.triggered

    def test_negative_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            Semaphore(sim, -1)

    def test_over_release_rejected(self, sim):
        sem = Semaphore(sim, 1)
        with pytest.raises(SimulationError):
            sem.release()

    def test_fifo_grant_order(self, sim):
        sem = Semaphore(sim, 0)
        order = []

        def worker(name):
            yield sem.acquire()
            order.append(name)

        for name in "abc":
            sim.process(worker(name))
        sim.schedule(1.0, sem.release)
        sim.schedule(2.0, sem.release)
        sim.schedule(3.0, sem.release)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_mutex_serializes(self, sim):
        sem = Semaphore(sim, 1)
        spans = []

        def worker():
            yield sem.acquire()
            start = sim.now
            yield sim.timeout(1.0)
            spans.append((start, sim.now))
            sem.release()

        for _ in range(3):
            sim.process(worker())
        sim.run()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert s2 >= e1


class TestCountdownLatch:
    def test_opens_after_n_arrivals(self, sim):
        latch = CountdownLatch(sim, 3)
        opened = []

        def waiter():
            yield latch.wait()
            opened.append(sim.now)

        sim.process(waiter())
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, latch.arrive)
        sim.run()
        assert opened == [3.0]

    def test_wait_after_open_immediate(self, sim):
        latch = CountdownLatch(sim, 0)
        ev = latch.wait()
        assert ev.triggered

    def test_over_arrival_rejected(self, sim):
        latch = CountdownLatch(sim, 1)
        latch.arrive()
        with pytest.raises(SimulationError):
            latch.arrive()

    def test_bulk_arrive(self, sim):
        latch = CountdownLatch(sim, 5)
        latch.arrive(5)
        assert latch.remaining == 0
        with pytest.raises(SimulationError):
            CountdownLatch(sim, 2).arrive(3)
