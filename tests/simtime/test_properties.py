"""Property-based tests of the event engine (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simtime import Simulator


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=50))
@settings(max_examples=100)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e3,
                                 allow_nan=False), min_size=1, max_size=20))
@settings(max_examples=50)
def test_equal_times_preserve_scheduling_order(delays):
    sim = Simulator()
    fired = []
    for i, d in enumerate(delays):
        sim.schedule(round(d, 1), lambda i=i: fired.append(i))
    sim.run()
    # Among equal timestamps, indices must appear in scheduling order.
    by_time: dict[float, list[int]] = {}
    for i, d in enumerate(delays):
        by_time.setdefault(round(d, 1), []).append(i)
    pos = {idx: p for p, idx in enumerate(fired)}
    for group in by_time.values():
        assert sorted(group, key=lambda i: pos[i]) == group


@given(segments=st.lists(st.floats(min_value=1e-9, max_value=100.0,
                                   allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=50)
def test_sequential_waits_sum_exactly(segments):
    sim = Simulator()
    end = []

    def body():
        for s in segments:
            yield sim.timeout(s)
        end.append(sim.now)

    sim.process(body())
    sim.run()
    expected = 0.0
    for s in segments:
        expected += s
    assert abs(end[0] - expected) < 1e-9 * max(1.0, expected)


@given(n=st.integers(min_value=1, max_value=40))
@settings(max_examples=30)
def test_n_process_barrier_latch(n):
    from repro.simtime import CountdownLatch

    sim = Simulator()
    latch = CountdownLatch(sim, n)
    done = []

    def worker(i):
        yield sim.timeout(float(i))
        latch.arrive()
        yield latch.wait()
        done.append(sim.now)

    for i in range(n):
        sim.process(worker(i))
    sim.run()
    assert len(done) == n
    assert all(t == float(n - 1) for t in done)
