"""Process.kill/throw/on_death: the unwind machinery behind rank crashes."""

from repro.errors import ProcessKilled, SimulationError


class TestKill:
    def test_kill_unwinds_generator_and_runs_finally(self, sim):
        cleaned = []

        def body():
            try:
                yield sim.timeout(10.0)
            finally:
                cleaned.append(sim.now)

        p = sim.process(body())
        sim.run(until=1.0)
        p.kill()
        assert cleaned == [1.0]
        assert p.triggered and not p.ok
        assert isinstance(p.value, ProcessKilled)

    def test_kill_is_idempotent_after_completion(self, sim):
        def body():
            yield sim.timeout(1.0)
            return "ok"

        p = sim.process(body())
        sim.run()
        p.kill()  # no-op: already triggered
        assert p.ok and p.value == "ok"

    def test_killed_process_failure_is_defused(self, sim):
        """Nobody observes a killed process's handle; the sim must not abort."""
        def body():
            yield sim.timeout(5.0)

        p = sim.process(body())
        sim.run(until=1.0)
        p.kill()
        sim.run()  # would raise the pending failure if it were not defused

    def test_pending_event_of_killed_process_cannot_fire_late(self, sim):
        def body():
            yield sim.timeout(5.0)
            raise AssertionError("resumed after kill")

        p = sim.process(body())
        sim.run(until=1.0)
        p.kill()
        sim.run()  # the 5.0 timeout fires into a dead process: ignored
        assert not p.ok

    def test_kill_with_custom_exception(self, sim):
        class Boom(SimulationError):
            pass

        def body():
            yield sim.timeout(3.0)

        p = sim.process(body())
        sim.run(until=0.5)
        p.kill(Boom("crash"))
        assert isinstance(p.value, Boom)


class TestThrow:
    def test_throw_delivers_exception_at_wait_point(self, sim):
        seen = []

        def body():
            try:
                yield sim.timeout(100.0)
            except ValueError as err:
                seen.append(str(err))
            return "recovered"

        p = sim.process(body())
        sim.run(until=1.0)
        p.throw(ValueError("async"))
        sim.run()
        assert seen == ["async"]
        assert p.ok and p.value == "recovered"

    def test_throw_only_if_false_is_dropped(self, sim):
        def body():
            yield sim.timeout(2.0)
            return "clean"

        p = sim.process(body())
        sim.run(until=1.0)
        p.throw(ValueError("stale"), only_if=lambda: False)
        sim.run()
        assert p.ok and p.value == "clean"

    def test_throw_after_completion_is_dropped(self, sim):
        def body():
            yield sim.timeout(1.0)
            return "done"

        p = sim.process(body())
        sim.run()
        p.throw(ValueError("late"))
        sim.run()
        assert p.ok and p.value == "done"


class TestOnDeath:
    def test_on_death_fires_for_normal_exit(self, sim):
        ends = []

        def body():
            yield sim.timeout(1.0)
            return 42

        p = sim.process(body())
        p.on_death(lambda proc: ends.append(("ok", proc.value)))
        sim.run()
        assert ends == [("ok", 42)]

    def test_on_death_fires_for_kill(self, sim):
        ends = []

        def body():
            yield sim.timeout(9.0)

        p = sim.process(body())
        p.on_death(lambda proc: ends.append(type(proc.value).__name__))
        sim.run(until=1.0)
        p.kill()
        assert ends == ["ProcessKilled"]

    def test_on_death_immediate_when_already_dead(self, sim):
        def body():
            yield sim.timeout(1.0)

        p = sim.process(body())
        sim.run()
        ends = []
        p.on_death(lambda proc: ends.append("late-registration"))
        assert ends == ["late-registration"]


class TestOwner:
    def test_owner_tag_round_trips(self, sim):
        def body():
            yield sim.timeout(1.0)

        p = sim.process(body(), owner=7)
        assert p.owner == 7
        q = sim.process(body())
        assert q.owner is None
        sim.run()
