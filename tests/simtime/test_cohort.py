"""Cohort dispatch vs the scalar event loop (TestCohortDispatch).

``Simulator(cohort=True)`` drains every event ready at one instant as a
batch before running callbacks — the fast path the vectorized flow network
feeds.  The contract is *indistinguishability*: dispatch order, clock
values, counters, failure surfacing, and deadlock diagnostics must match
the scalar loop exactly; only ``cohorts_dispatched``/``max_cohort`` may
reveal which loop ran.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import vector
from repro.errors import DeadlockError, SimulationError
from repro.simtime import Simulator


def fire_trace(cohort: bool, delays):
    """Schedule one callback per delay; returns [(now, index)...] in
    dispatch order plus the simulator for counter checks."""
    sim = Simulator(cohort=cohort)
    fired = []
    for i, d in enumerate(delays):
        sim.schedule(d, lambda i=i: fired.append((sim.now, i)))
    sim.run()
    return fired, sim


class TestCohortDispatch:
    @given(delays=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1, max_size=60))
    @settings(max_examples=100)
    def test_dispatch_order_and_counters_match_scalar(self, delays):
        # Round to one decimal so same-instant collisions (real cohorts)
        # are common.
        delays = [round(d, 1) for d in delays]
        scalar, s_sim = fire_trace(False, delays)
        cohort, c_sim = fire_trace(True, delays)
        assert cohort == scalar
        assert c_sim.now == s_sim.now
        assert c_sim.events_processed == s_sim.events_processed
        assert c_sim.peak_heap == s_sim.peak_heap
        assert c_sim.cohorts_dispatched >= 1
        assert s_sim.cohorts_dispatched == 0

    @given(segments=st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 8)),
        min_size=1, max_size=12))
    @settings(max_examples=60)
    def test_process_chains_resume_identically(self, segments):
        # Chains of identical quantized timeouts: every hop of every chain
        # collides with its siblings, the worst case for batching bugs.
        def run(cohort: bool):
            sim = Simulator(cohort=cohort)
            log = []

            def chain(cid, start, hops):
                yield sim.timeout(float(start))
                for h in range(hops):
                    log.append((cid, h, sim.now))
                    yield sim.timeout(0.5)

            for cid, (start, hops) in enumerate(segments):
                sim.process(chain(cid, start, hops))
            sim.run()
            return log, sim.stats

        assert run(False) == run(True)

    def test_same_instant_event_from_callback_lands_after_cohort(self):
        # A callback scheduling a zero-delay event must see it dispatched
        # at the same instant but *after* the already-queued batch — the
        # scalar heap order.
        def run(cohort: bool):
            sim = Simulator(cohort=cohort)
            order = []

            def spawn():
                order.append("spawn")
                sim.schedule(0.0, lambda: order.append("child"))

            sim.schedule(1.0, spawn)
            sim.schedule(1.0, lambda: order.append("sibling"))
            sim.run()
            return order

        assert run(True) == run(False) == ["spawn", "sibling", "child"]

    def test_max_cohort_records_widest_batch(self):
        sim = Simulator(cohort=True)
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.max_cohort == 5
        assert sim.cohorts_dispatched == 2

    def test_singleton_only_run_reports_max_cohort_one(self):
        sim = Simulator(cohort=True)
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.cohorts_dispatched == 2
        assert sim.max_cohort == 1

    def test_stats_dict_shape_is_mode_independent(self):
        # --verbose prints sim.stats; the cohort counters live on the
        # simulator, not in the dict, so serial/parallel renders match.
        assert Simulator(cohort=True).stats.keys() == \
               Simulator(cohort=False).stats.keys()


class TestCohortFailures:
    @pytest.mark.parametrize("cohort", [False, True])
    def test_unwaited_failure_surfaces_and_loses_no_events(self, cohort):
        sim = Simulator(cohort=cohort)
        fired = []
        # Four events at the same instant (one cohort): a callback, the
        # failing event, then two more whose callbacks have not run when
        # the failure surfaces — they must survive for the next run().
        sim.schedule(0.0, lambda: fired.append("before"))
        sim.event(name="boom").fail(RuntimeError("boom"))
        sim.schedule(0.0, lambda: fired.append("after-1"))
        sim.schedule(0.0, lambda: fired.append("after-2"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()
        assert fired == ["before"]
        sim.run()  # the surviving same-instant events re-dispatch
        assert fired == ["before", "after-1", "after-2"]

    @pytest.mark.parametrize("cohort", [False, True])
    def test_raising_callback_requeues_undispatched_cohort_rest(
            self, cohort):
        sim = Simulator(cohort=cohort)
        fired = []

        def bad():
            raise SimulationError("callback exploded")

        sim.schedule(1.0, lambda: fired.append(0))
        sim.schedule(1.0, bad)
        sim.schedule(1.0, lambda: fired.append(2))
        with pytest.raises(SimulationError, match="exploded"):
            sim.run()
        assert fired == [0]
        sim.run()
        assert fired == [0, 2]

    @pytest.mark.parametrize("cohort", [False, True])
    def test_deadlock_diagnostics_identical(self, cohort):
        sim = Simulator(cohort=cohort)

        def waiter():
            yield sim.event(name="never")

        sim.process(waiter(), name="stuck")
        with pytest.raises(DeadlockError) as err:
            sim.run()
        assert "stuck" in str(err.value)


class TestHeterogeneousCohorts:
    """Same-instant cohorts mixing event *kinds*.

    The fused dispatch splits a cohort into a timer-lane part (fresh
    timeouts) and a heap part (signalled events, process completions) and
    merges them by sequence number; these properties drive all the kinds
    into the same instants and demand the scalar loop's observable
    behavior — log order, clock values, counters — bit for bit.
    """

    @given(actors=st.lists(st.tuples(
        st.sampled_from(["timer", "signal", "crash"]),
        st.integers(0, 3),      # quantized start instant
        st.integers(1, 4)),     # chain hops (timers) / payload (others)
        min_size=2, max_size=14))
    @settings(max_examples=60, deadline=None)
    def test_mixed_kind_cohorts_match_scalar(self, actors):
        # Timer chains (the timer lane), events succeeded by peers (the
        # heap), and crashing processes caught by watchers (failure
        # propagation) all collide at the same quantized instants.
        def run(cohort: bool):
            sim = Simulator(cohort=cohort)
            log = []
            for aid, (kind, start, hops) in enumerate(actors):
                if kind == "timer":
                    def chain(aid=aid, start=start, hops=hops):
                        yield sim.timeout(float(start))
                        for h in range(hops):
                            log.append(("t", aid, h, sim.now))
                            yield sim.timeout(0.5)
                    sim.process(chain())
                elif kind == "signal":
                    ev = sim.event(name=f"sig{aid}")

                    def poker(ev=ev, start=start, aid=aid):
                        yield sim.timeout(float(start))
                        ev.succeed(aid)

                    def waiter(ev=ev, aid=aid):
                        got = yield ev
                        log.append(("s", aid, got, sim.now))

                    sim.process(poker())
                    sim.process(waiter())
                else:
                    def crasher(aid=aid, start=start):
                        yield sim.timeout(float(start))
                        raise RuntimeError(f"crash-{aid}")

                    victim = sim.process(crasher(), name=f"victim{aid}")

                    def watcher(victim=victim, aid=aid):
                        try:
                            yield victim
                        except RuntimeError as err:
                            log.append(("c", aid, str(err), sim.now))

                    sim.process(watcher())
            sim.run()
            return log, sim.now, sim.stats

        assert run(False) == run(True)

    @given(timers=st.lists(st.tuples(st.integers(0, 2), st.integers(1, 4)),
                           min_size=1, max_size=8),
           crash_at=st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_unwatched_crash_mid_cohort_leaves_identical_state(
            self, timers, crash_at):
        # An *unwatched* process failure surfaces from run() mid-cohort;
        # the queue it leaves behind (requeued survivors included) and a
        # follow-up run() must match the scalar loop exactly.
        def run(cohort: bool):
            sim = Simulator(cohort=cohort)
            log = []

            def chain(cid, start, hops):
                yield sim.timeout(float(start))
                for h in range(hops):
                    log.append((cid, h, sim.now))
                    yield sim.timeout(0.5)

            def crasher():
                yield sim.timeout(float(crash_at))
                raise RuntimeError("boom")

            for cid, (start, hops) in enumerate(timers):
                sim.process(chain(cid, start, hops))
            sim.process(crasher(), name="crasher")
            with pytest.raises(RuntimeError, match="boom"):
                sim.run()
            mid = (list(log), sim.now, sim.queue_size, sim.stats)
            sim.run()  # survivors drain; must complete identically
            return mid, log, sim.now, sim.stats

        assert run(False) == run(True)

    @given(flows=st.lists(st.tuples(
        st.integers(1, 4),       # nbytes (integer -> half-step completions)
        st.integers(0, 2),       # start instant
        st.booleans()),          # also ride the shared resource
        min_size=1, max_size=6),
        timers=st.lists(st.tuples(st.integers(0, 2), st.integers(1, 4)),
                        min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_flow_completions_mixed_with_timers_match_scalar(
            self, flows, timers):
        # Real flow-network completions (vectorized waterfilling feeding
        # heap events) landing at the same instants as timer-lane chains.
        from repro.hardware.flows import FlowNetwork, Resource

        def run(cohort: bool):
            sim = Simulator(cohort=cohort)
            net = FlowNetwork(sim, vectorized=cohort)
            net.vector_min_flows = 0
            shared = Resource("shared", capacity=4.0)
            log = []

            def one_flow(fid, nbytes, start, ride_shared):
                own = Resource(f"own{fid}", capacity=2.0)
                weights = {own: 1.0}
                if ride_shared:
                    weights[shared] = 1.0
                yield sim.timeout(float(start))
                yield net.transfer(float(nbytes), demand=100.0,
                                   weights=weights, label=f"f{fid}")
                log.append(("f", fid, sim.now))

            def chain(cid, start, hops):
                yield sim.timeout(float(start))
                for h in range(hops):
                    log.append(("t", cid, h, sim.now))
                    yield sim.timeout(0.5)

            for fid, (nbytes, start, ride) in enumerate(flows):
                sim.process(one_flow(fid, nbytes, start, ride))
            for cid, (start, hops) in enumerate(timers):
                sim.process(chain(cid, start, hops))
            sim.run()
            return (log, sim.now, net.completed_flows,
                    sim.stats), net.completed_bytes

        scalar, s_bytes = run(False)
        vectored, v_bytes = run(True)
        assert vectored == scalar
        # completed_bytes is the one tolerance-compared stat: its scalar
        # accumulation order is address-dependent, so the vector path sums
        # it in id order instead (see FlowNetwork._advance).
        assert v_bytes == pytest.approx(s_bytes)


class TestCohortFlag:
    def test_default_follows_process_flag(self):
        with vector.forced(True):
            assert Simulator().cohort is True
        with vector.forced(False):
            assert Simulator().cohort is False

    def test_explicit_argument_pins_the_mode(self):
        with vector.forced(True):
            assert Simulator(cohort=False).cohort is False
        with vector.forced(False):
            assert Simulator(cohort=True).cohort is True
