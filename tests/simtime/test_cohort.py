"""Cohort dispatch vs the scalar event loop (TestCohortDispatch).

``Simulator(cohort=True)`` drains every event ready at one instant as a
batch before running callbacks — the fast path the vectorized flow network
feeds.  The contract is *indistinguishability*: dispatch order, clock
values, counters, failure surfacing, and deadlock diagnostics must match
the scalar loop exactly; only ``cohorts_dispatched``/``max_cohort`` may
reveal which loop ran.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import vector
from repro.errors import DeadlockError, SimulationError
from repro.simtime import Simulator


def fire_trace(cohort: bool, delays):
    """Schedule one callback per delay; returns [(now, index)...] in
    dispatch order plus the simulator for counter checks."""
    sim = Simulator(cohort=cohort)
    fired = []
    for i, d in enumerate(delays):
        sim.schedule(d, lambda i=i: fired.append((sim.now, i)))
    sim.run()
    return fired, sim


class TestCohortDispatch:
    @given(delays=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1, max_size=60))
    @settings(max_examples=100)
    def test_dispatch_order_and_counters_match_scalar(self, delays):
        # Round to one decimal so same-instant collisions (real cohorts)
        # are common.
        delays = [round(d, 1) for d in delays]
        scalar, s_sim = fire_trace(False, delays)
        cohort, c_sim = fire_trace(True, delays)
        assert cohort == scalar
        assert c_sim.now == s_sim.now
        assert c_sim.events_processed == s_sim.events_processed
        assert c_sim.peak_heap == s_sim.peak_heap
        assert c_sim.cohorts_dispatched >= 1
        assert s_sim.cohorts_dispatched == 0

    @given(segments=st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 8)),
        min_size=1, max_size=12))
    @settings(max_examples=60)
    def test_process_chains_resume_identically(self, segments):
        # Chains of identical quantized timeouts: every hop of every chain
        # collides with its siblings, the worst case for batching bugs.
        def run(cohort: bool):
            sim = Simulator(cohort=cohort)
            log = []

            def chain(cid, start, hops):
                yield sim.timeout(float(start))
                for h in range(hops):
                    log.append((cid, h, sim.now))
                    yield sim.timeout(0.5)

            for cid, (start, hops) in enumerate(segments):
                sim.process(chain(cid, start, hops))
            sim.run()
            return log, sim.stats

        assert run(False) == run(True)

    def test_same_instant_event_from_callback_lands_after_cohort(self):
        # A callback scheduling a zero-delay event must see it dispatched
        # at the same instant but *after* the already-queued batch — the
        # scalar heap order.
        def run(cohort: bool):
            sim = Simulator(cohort=cohort)
            order = []

            def spawn():
                order.append("spawn")
                sim.schedule(0.0, lambda: order.append("child"))

            sim.schedule(1.0, spawn)
            sim.schedule(1.0, lambda: order.append("sibling"))
            sim.run()
            return order

        assert run(True) == run(False) == ["spawn", "sibling", "child"]

    def test_max_cohort_records_widest_batch(self):
        sim = Simulator(cohort=True)
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.max_cohort == 5
        assert sim.cohorts_dispatched == 2

    def test_singleton_only_run_reports_max_cohort_one(self):
        sim = Simulator(cohort=True)
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.cohorts_dispatched == 2
        assert sim.max_cohort == 1

    def test_stats_dict_shape_is_mode_independent(self):
        # --verbose prints sim.stats; the cohort counters live on the
        # simulator, not in the dict, so serial/parallel renders match.
        assert Simulator(cohort=True).stats.keys() == \
               Simulator(cohort=False).stats.keys()


class TestCohortFailures:
    @pytest.mark.parametrize("cohort", [False, True])
    def test_unwaited_failure_surfaces_and_loses_no_events(self, cohort):
        sim = Simulator(cohort=cohort)
        fired = []
        # Four events at the same instant (one cohort): a callback, the
        # failing event, then two more whose callbacks have not run when
        # the failure surfaces — they must survive for the next run().
        sim.schedule(0.0, lambda: fired.append("before"))
        sim.event(name="boom").fail(RuntimeError("boom"))
        sim.schedule(0.0, lambda: fired.append("after-1"))
        sim.schedule(0.0, lambda: fired.append("after-2"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()
        assert fired == ["before"]
        sim.run()  # the surviving same-instant events re-dispatch
        assert fired == ["before", "after-1", "after-2"]

    @pytest.mark.parametrize("cohort", [False, True])
    def test_raising_callback_requeues_undispatched_cohort_rest(
            self, cohort):
        sim = Simulator(cohort=cohort)
        fired = []

        def bad():
            raise SimulationError("callback exploded")

        sim.schedule(1.0, lambda: fired.append(0))
        sim.schedule(1.0, bad)
        sim.schedule(1.0, lambda: fired.append(2))
        with pytest.raises(SimulationError, match="exploded"):
            sim.run()
        assert fired == [0]
        sim.run()
        assert fired == [0, 2]

    @pytest.mark.parametrize("cohort", [False, True])
    def test_deadlock_diagnostics_identical(self, cohort):
        sim = Simulator(cohort=cohort)

        def waiter():
            yield sim.event(name="never")

        sim.process(waiter(), name="stuck")
        with pytest.raises(DeadlockError) as err:
            sim.run()
        assert "stuck" in str(err.value)


class TestCohortFlag:
    def test_default_follows_process_flag(self):
        with vector.forced(True):
            assert Simulator().cohort is True
        with vector.forced(False):
            assert Simulator().cohort is False

    def test_explicit_argument_pins_the_mode(self):
        with vector.forced(True):
            assert Simulator(cohort=False).cohort is False
        with vector.forced(False):
            assert Simulator(cohort=True).cohort is True
