"""Event loop semantics: ordering, triggering, failure propagation."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.simtime import Event, Simulator, Timeout


class TestEvent:
    def test_pending_until_triggered(self, sim):
        ev = sim.event()
        assert not ev.triggered
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_sets_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_double_trigger_rejected(self, sim):
        ev = sim.event().succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")  # type: ignore[arg-type]

    def test_callbacks_run_in_registration_order(self, sim):
        ev = sim.event()
        order = []
        ev.add_callback(lambda e: order.append(1))
        ev.add_callback(lambda e: order.append(2))
        ev.succeed()
        sim.run()
        assert order == [1, 2]

    def test_late_callback_still_fires(self, sim):
        ev = sim.event().succeed("v")
        sim.run()
        assert ev.processed
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == ["v"]

    def test_unwaited_failure_surfaces(self, sim):
        ev = sim.event()
        ev.fail(ValueError("lost"))
        with pytest.raises(ValueError, match="lost"):
            sim.run()


class TestTimeout:
    def test_fires_at_delay(self, sim):
        times = []
        t = Timeout(sim, 2.5)
        t.add_callback(lambda e: times.append(sim.now))
        sim.run()
        assert times == [2.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            Timeout(sim, -1.0)

    def test_value_passthrough(self, sim):
        t = sim.timeout(1.0, value="payload")
        got = []
        t.add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == ["payload"]

    def test_zero_delay_allowed(self, sim):
        t = sim.timeout(0.0)
        sim.run()
        assert t.processed
        assert sim.now == 0.0


class TestSimulator:
    def test_same_time_fifo_order(self, sim):
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_interleaved_times(self, sim):
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_run_until_stops_clock(self, sim):
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.run(until=5.0)
        assert not fired
        assert sim.now == 5.0
        sim.run()
        assert fired == [1]

    def test_run_until_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0.5)

    def test_step_empty_queue_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_nested_scheduling(self, sim):
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, lambda: seen.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]

    def test_deadlock_detection_names_blocked_process(self, sim):
        def stuck():
            yield sim.event()  # never triggered

        sim.process(stuck(), name="stuck-proc")
        with pytest.raises(DeadlockError) as exc:
            sim.run()
        assert "stuck-proc" in str(exc.value)

    def test_deadlock_report_is_deterministic(self, sim):
        """The report names every blocked process (sorted), the event each
        one is parked on, and the count of distinct pending events."""
        def stuck_on(ev):
            yield ev

        never_a = sim.event(name="never-a")
        never_b = sim.event(name="never-b")
        # registered out of name order on purpose: the report must sort
        sim.process(stuck_on(never_b), name="procB")
        sim.process(stuck_on(never_a), name="procA")
        with pytest.raises(DeadlockError) as exc:
            sim.run()
        err = exc.value
        assert err.blocked == ["procA", "procB"]
        assert err.waiting == {"procA": "never-a", "procB": "never-b"}
        assert err.pending_events == 2
        msg = str(err)
        assert "procA (waiting on never-a)" in msg
        assert "procB (waiting on never-b)" in msg
        assert "2 distinct pending event(s)" in msg

    def test_deadlock_report_counts_shared_event_once(self, sim):
        def stuck_on(ev):
            yield ev

        shared = sim.event(name="shared-gate")
        sim.process(stuck_on(shared), name="p0")
        sim.process(stuck_on(shared), name="p1")
        with pytest.raises(DeadlockError) as exc:
            sim.run()
        assert exc.value.pending_events == 1
        assert exc.value.waiting == {"p0": "shared-gate", "p1": "shared-gate"}

    def test_daemon_does_not_deadlock(self, sim):
        def daemon():
            yield sim.event()

        sim.process(daemon(), name="bg", daemon=True)
        sim.run()  # no DeadlockError

    def test_queue_size_tracks_pending(self, sim):
        assert sim.queue_size == 0
        sim.timeout(1.0)
        sim.timeout(2.0)
        assert sim.queue_size == 2
        sim.run()
        assert sim.queue_size == 0


class TestLateFailure:
    """Late registration on an already-processed *failed* event.

    Regression tests: the late-registration proxy used to succeed with
    ``None``, so late waiters saw a successful event where early waiters
    saw the failure.
    """

    def _failed_processed_event(self, sim, caught):
        ev = sim.event()

        def early():
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        def failer():
            ev.fail(ValueError("boom"))
            return
            yield  # pragma: no cover - makes this a generator

        sim.process(early(), name="early")
        sim.process(failer(), name="failer")
        sim.run()
        assert ev.processed and not ev.ok
        return ev

    def test_late_callback_sees_failure(self, sim):
        caught = []
        ev = self._failed_processed_event(sim, caught)
        seen = []
        ev.add_callback(lambda e: seen.append((e is ev, e.ok, str(e.value))))
        sim.run()
        assert caught == ["boom"]
        assert seen == [(True, False, "boom")]

    def test_late_process_waiter_sees_failure(self, sim):
        caught = []
        ev = self._failed_processed_event(sim, caught)

        def late():
            try:
                yield ev
            except ValueError as exc:
                caught.append(f"late:{exc}")

        sim.process(late(), name="late")
        sim.run()  # must not re-surface the defused failure either
        assert caught == ["boom", "late:boom"]

    def test_allof_with_processed_failed_child_fails(self, sim):
        from repro.simtime import AllOf

        caught = []
        bad = self._failed_processed_event(sim, caught)
        ok = sim.event().succeed(1)
        comp = AllOf(sim, [ok, bad])

        def waiter():
            try:
                yield comp
            except ValueError as exc:
                caught.append(f"allof:{exc}")

        sim.process(waiter(), name="waiter")
        sim.run()
        assert caught == ["boom", "allof:boom"]
        assert not comp.ok


class TestCounters:
    def test_counters_start_at_zero(self, sim):
        assert sim.stats == {"events_processed": 0, "process_resumes": 0,
                             "peak_heap": 0}

    def test_counters_track_activity(self, sim):
        def prog():
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.process(prog(), name="p")
        sim.run()
        st = sim.stats
        assert st["events_processed"] >= 3  # start + two timeouts
        assert st["process_resumes"] >= 3
        assert st["peak_heap"] >= 1

    def test_run_until_also_counts(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run(until=1.5)
        assert sim.stats["events_processed"] == 1
        sim.run()
        assert sim.stats["events_processed"] == 2
